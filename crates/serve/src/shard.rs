//! Sharded serving runtime: shard-local schedulers, work stealing,
//! deficit-round-robin tenant fairness, telemetry-driven autoscaling,
//! and online strategy swap — all deterministic in simulated time.
//!
//! # Architecture
//!
//! Tenants are partitioned across `shards` shard-local schedulers
//! (`gid % shards`). Each shard owns its tenants' arrival streams,
//! queues, a [`DrrRing`] of backlogged tenants, and a [`ReplicaPool`] of
//! local replicas; it advances its own clock with the same
//! ingest-before-dispatch recurrence the original event loop used, but
//! tenant selection is deficit round-robin (weighted fair queueing)
//! instead of global oldest-head-first FIFO.
//!
//! The simulated horizon is cut into `epochs` equal windows. *Within* an
//! epoch shards are fully independent — that is what makes the
//! epoch-parallel driver embarrassingly parallel — and every coupling
//! mechanism runs at the deterministic epoch barrier, in a fixed order:
//!
//! 1. **settle** — every shard's queue-depth integral is settled to the
//!    barrier instant;
//! 2. **steal** — idle shards (backlog ≤ `max_thief_backlog`, a replica
//!    free by the barrier) steal the most backlogged tenant from the
//!    most backlogged shards (backlog ≥ `min_victim_backlog`), one
//!    whole-tenant migration per thief: queue, arrival cursor, deficit
//!    and statistics move atomically, so no request is lost or reordered
//!    within its tenant;
//! 3. **autoscale** — an [`AlertEngine`] consumes the epoch's mean
//!    queue depth and SLO attainment (the same pending → firing →
//!    resolved hysteresis discipline as `obs::alert`) and adds a replica
//!    to the most backlogged shard or retires the highest-id replica of
//!    the least backlogged one, within bounds and a cooldown;
//! 4. **swap** — a tenant with an [`alt_deployment`] whose share of the
//!    epoch's arrivals drifted past `share_factor ×` its long-run share
//!    is remapped onto the alternative strategy (ARAS-style): the
//!    owning shard's earliest-free replica takes a `remap_ns` pause
//!    starting no earlier than the barrier, so in-flight batches drain
//!    first, and the switch applies to every subsequent batch.
//!
//! # Determinism
//!
//! Everything is integer arithmetic on pre-generated arrival streams.
//! Within an epoch a shard touches only its own state; barrier steps
//! iterate shards and tenants in ascending id order. Consequently the
//! epoch-parallel driver is *bit-identical* to the sequential one — the
//! only nondeterminism a thread schedule could introduce is the order
//! in which independent shards are stepped, and shard state composes
//! commutatively at the barrier. The linear-scan reference
//! ([`SelectMode::LinearScan`]) makes every choice by an O(tenants)
//! or O(replicas) scan; heap mode makes the same choices through
//! lazy-deletion heaps ([`ReplicaPool`], [`StampedHeap`]) with the
//! scan's tie-breaks, so all three drivers produce identical reports.
//!
//! [`alt_deployment`]: crate::workload::TenantSpec::alt_deployment

use crate::drr::{DrrAccess, DrrRing};
use crate::ready::{ReplicaPool, StampedHeap};
use crate::report::{jain_index, LatencyHistogram, WindowStats};
use crate::workload::{tenant_arrivals, TenantSpec, Workload};
use autohet_obs::alert::{AlertEngine, AlertRule, ThresholdRule};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Alert-rule name the autoscaler fires to add replicas.
pub const SCALE_UP_RULE: &str = "serve.scale_up";
/// Alert-rule name the autoscaler fires to drain replicas.
pub const SCALE_DOWN_RULE: &str = "serve.scale_down";
/// Alert-rule name for the SLO-floor scale-up trigger.
pub const SCALE_SLO_RULE: &str = "serve.scale_slo";

/// How the scheduler finds minima: the faithful linear scans of the
/// original event loop, or the heap-backed structures that replace them.
/// Both modes make identical decisions; they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectMode {
    /// O(tenants)/O(replicas) scans per event — the reference.
    LinearScan,
    /// O(log) lazy-deletion heaps with the scan's exact tie-breaks.
    Heap,
}

/// Work-stealing policy evaluated at every epoch barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StealSpec {
    /// A shard is a victim when its backlog is at least this many
    /// queued requests.
    pub min_victim_backlog: usize,
    /// A shard is a thief when its backlog is at most this many queued
    /// requests (and one of its replicas is free by the barrier).
    pub max_thief_backlog: usize,
}

impl Default for StealSpec {
    fn default() -> Self {
        StealSpec {
            min_victim_backlog: 16,
            max_thief_backlog: 0,
        }
    }
}

/// Telemetry-driven replica autoscaling, evaluated at epoch barriers
/// through an [`AlertEngine`] with threshold hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleSpec {
    /// Scale up when the epoch mean queue depth exceeds this.
    pub high_depth: f64,
    /// Scale down when the epoch mean queue depth drops below this.
    pub low_depth: f64,
    /// Scale up when epoch SLO attainment drops below this (0 disables).
    pub slo_floor: f64,
    /// Consecutive breaching epochs before a rule fires.
    pub for_epochs: usize,
    /// Consecutive clean epochs before a firing rule resolves.
    pub clear_epochs: usize,
    /// Total active replicas never drops below this.
    pub min_replicas: usize,
    /// Total active replicas never exceeds this.
    pub max_replicas: usize,
    /// Barriers to wait after a scaling action before the next one.
    pub cooldown_epochs: usize,
}

impl Default for AutoscaleSpec {
    fn default() -> Self {
        AutoscaleSpec {
            high_depth: 8.0,
            low_depth: 1.0,
            slo_floor: 0.0,
            for_epochs: 2,
            clear_epochs: 2,
            min_replicas: 1,
            max_replicas: 64,
            cooldown_epochs: 1,
        }
    }
}

/// Online strategy-swap policy: remap a tenant onto its
/// `alt_deployment` when its epoch arrival share drifts past
/// `share_factor ×` its long-run (rate-derived) share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwapSpec {
    /// Drift threshold as a multiple of the tenant's baseline share.
    pub share_factor: f64,
    /// Epochs with fewer total arrivals than this are too noisy to act
    /// on.
    pub min_epoch_requests: u64,
    /// Pause charged to the owning shard's earliest-free replica while
    /// the new strategy is programmed (in-flight batches drain first).
    pub remap_ns: u64,
}

impl Default for SwapSpec {
    fn default() -> Self {
        SwapSpec {
            share_factor: 2.0,
            min_epoch_requests: 64,
            remap_ns: 1_500_000,
        }
    }
}

/// Configuration of the sharded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Shard-local schedulers; tenants partition as `gid % shards`.
    pub shards: usize,
    /// Replicas each shard starts with.
    pub replicas_per_shard: usize,
    /// Max requests per dispatched batch.
    pub max_batch: usize,
    /// A head request waits at most this long for its batch to fill.
    pub batch_window_ns: u64,
    /// Per-tenant admission bound (arrivals beyond it are rejected).
    pub queue_depth: usize,
    /// Epoch barriers per horizon; also the telemetry window count.
    pub epochs: usize,
    /// DRR quantum: deficit granted per turn is `quantum × weight`.
    pub quantum: u64,
    /// Scheduler implementation (identical decisions either way).
    pub mode: SelectMode,
    /// Work stealing at epoch barriers.
    pub steal: Option<StealSpec>,
    /// Telemetry-driven replica autoscaling.
    pub autoscale: Option<AutoscaleSpec>,
    /// Online strategy swap on workload-mix drift.
    pub swap: Option<SwapSpec>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            replicas_per_shard: 1,
            max_batch: 8,
            batch_window_ns: 1_000_000,
            queue_depth: 64,
            epochs: 16,
            quantum: 1,
            mode: SelectMode::Heap,
            steal: None,
            autoscale: None,
            swap: None,
        }
    }
}

impl ShardConfig {
    fn validate(&self) {
        assert!(self.shards >= 1, "at least one shard");
        assert!(self.replicas_per_shard >= 1, "at least one replica/shard");
        assert!(self.max_batch >= 1, "zero max_batch");
        assert!(self.queue_depth >= 1, "zero queue_depth");
        assert!(self.epochs >= 1, "at least one epoch");
        assert!(self.quantum >= 1, "zero quantum");
    }
}

/// One autoscaling action on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Barrier instant [ns].
    pub t_ns: u64,
    /// Epoch index of the barrier.
    pub epoch: usize,
    /// `true` = replica added, `false` = replica retired.
    pub up: bool,
    /// Shard the replica belongs to.
    pub shard: usize,
    /// Shard-local replica id.
    pub replica: usize,
    /// Total active replicas after the action.
    pub active_after: usize,
}

/// One whole-tenant migration between shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StealEvent {
    /// Barrier instant [ns].
    pub t_ns: u64,
    /// Epoch index of the barrier.
    pub epoch: usize,
    /// Migrated tenant (global index).
    pub tenant: usize,
    pub from_shard: usize,
    pub to_shard: usize,
    /// Queued requests that moved with the tenant.
    pub moved_requests: usize,
}

/// One online strategy swap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwapEvent {
    /// Barrier instant [ns].
    pub t_ns: u64,
    /// Epoch index of the barrier.
    pub epoch: usize,
    /// Swapped tenant (global index).
    pub tenant: usize,
    /// Shard owning the tenant at swap time.
    pub shard: usize,
    /// Shard-local replica that took the remap pause.
    pub replica: usize,
    /// The tenant's arrival share in the triggering epoch.
    pub share: f64,
    /// The tenant's long-run (rate-derived) share.
    pub base_share: f64,
}

/// The autoscaler's input signals for one epoch, recorded verbatim so
/// the post-hoc alert timeline replays *exactly* what the runtime saw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochSignal {
    /// Barrier instant [ns].
    pub t_ns: u64,
    /// Mean queue depth over the epoch (area / span).
    pub mean_queue_depth: f64,
    /// SLO attainment over the epoch's completions.
    pub slo_attainment: f64,
    /// Total queued requests across shards at the barrier.
    pub backlog: u64,
}

/// Per-tenant results of a sharded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardTenantStats {
    pub name: String,
    /// DRR fair-share weight.
    pub weight: u64,
    /// Shard owning the tenant at the end of the run.
    pub shard: usize,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub batches: u64,
    /// Latency quantiles from the tenant's log₂ histogram [ns].
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
    pub slo_ns: u64,
    pub slo_attainment: f64,
    pub throughput_rps: f64,
    pub energy_nj: f64,
    /// Busy replica-time this tenant's batches consumed [ns] — the
    /// "attained service" the fairness index is computed over.
    pub attained_service_ns: u64,
    pub peak_queue_depth: u64,
    pub mean_queue_depth: f64,
    /// Whether the tenant ended the run on its alternative strategy.
    pub swapped: bool,
    pub histogram: LatencyHistogram,
}

/// Per-shard summary of a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    pub shard: usize,
    /// Tenants owned at the end of the run.
    pub tenants: usize,
    pub replicas_active: usize,
    /// Replicas ever created on this shard (including retired).
    pub replicas_total: usize,
    pub dispatched_batches: u64,
    pub steals_in: u64,
    pub steals_out: u64,
    /// Last completion on this shard [ns].
    pub makespan_ns: u64,
}

/// Results of a sharded serving run. The three drivers (linear-scan
/// reference, heap mode, epoch-parallel) produce bit-identical values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardServingReport {
    pub seed: u64,
    pub horizon_ns: u64,
    pub makespan_ns: u64,
    pub shards: usize,
    pub epochs: usize,
    pub replicas_initial: usize,
    pub replicas_final: usize,
    /// Peak concurrently-active replicas (autoscaling high-water mark).
    pub replicas_peak: usize,
    pub batches: u64,
    pub mean_batch_size: f64,
    pub total_submitted: u64,
    pub total_completed: u64,
    pub total_rejected: u64,
    pub total_energy_nj: f64,
    pub aggregate_throughput_rps: f64,
    /// Jain's fairness index over per-tenant attained service per unit
    /// weight (1.0 = perfectly weight-proportional).
    pub fairness_index: f64,
    pub tenants: Vec<ShardTenantStats>,
    pub shard_stats: Vec<ShardStats>,
    /// One window per epoch, on the epoch grid.
    pub windows: Vec<WindowStats>,
    /// The autoscaler's per-epoch input signals (recorded even when
    /// autoscaling is off — they are the epoch telemetry).
    pub epoch_signals: Vec<EpochSignal>,
    pub scale_events: Vec<ScaleEvent>,
    pub steal_events: Vec<StealEvent>,
    pub swap_events: Vec<SwapEvent>,
}

impl ShardServingReport {
    /// Requests neither completed nor rejected — 0 after a full drain;
    /// the zero-lost-requests guarantee the swap tests pin down.
    pub fn lost_requests(&self) -> u64 {
        self.total_submitted - self.total_completed - self.total_rejected
    }
}

/// The epoch/window grid: `n` windows of `len` ns, the last one
/// absorbing the remainder and the drain tail.
#[derive(Debug, Clone, Copy)]
struct WinGrid {
    len: u64,
    n: usize,
}

impl WinGrid {
    fn new(horizon_ns: u64, epochs: usize) -> Self {
        WinGrid {
            len: (horizon_ns / epochs as u64).max(1),
            n: epochs,
        }
    }

    fn window_of(self, t: u64) -> usize {
        ((t / self.len) as usize).min(self.n - 1)
    }

    fn start_of(self, w: usize) -> u64 {
        w as u64 * self.len
    }

    fn end_of(self, w: usize, horizon_ns: u64) -> u64 {
        if w + 1 == self.n {
            horizon_ns
        } else {
            (w as u64 + 1) * self.len
        }
    }
}

/// Everything that travels with a tenant when it migrates between
/// shards: queue, arrival stream position, DRR deficit, and all
/// accounting. `stamp` versions the tenant's ready-heap entries.
#[derive(Debug, Clone)]
struct TenantState {
    gid: usize,
    weight: u64,
    slo_ns: u64,
    arrivals: Vec<u64>,
    cursor: usize,
    /// Arrival times of queued (admitted, undispatched) requests.
    queue: VecDeque<u64>,
    deficit: u64,
    stamp: u64,
    swapped: bool,
    submitted: u64,
    rejected: u64,
    completed: u64,
    met: u64,
    batches: u64,
    attained_ns: u64,
    energy_nj: f64,
    lat_sum: u128,
    max_lat: u64,
    hist: LatencyHistogram,
    peak_depth: usize,
    depth_area: u128,
    last_event: u64,
    /// Per-epoch arrivals (travels with the tenant; sums are global).
    win_submitted: Vec<u64>,
    /// Per-epoch attained service, keyed by completion window.
    win_attained: Vec<u64>,
}

impl TenantState {
    fn new(gid: usize, spec: &TenantSpec, wl: &Workload, n_win: usize) -> Self {
        TenantState {
            gid,
            weight: spec.weight.max(1),
            slo_ns: spec.slo_ns,
            arrivals: tenant_arrivals(gid, spec, wl),
            cursor: 0,
            queue: VecDeque::new(),
            deficit: 0,
            stamp: 0,
            swapped: false,
            submitted: 0,
            rejected: 0,
            completed: 0,
            met: 0,
            batches: 0,
            attained_ns: 0,
            energy_nj: 0.0,
            lat_sum: 0,
            max_lat: 0,
            hist: LatencyHistogram::new(),
            peak_depth: 0,
            depth_area: 0,
            last_event: 0,
            win_submitted: vec![0; n_win],
            win_attained: vec![0; n_win],
        }
    }
}

/// Earliest instant the tenant's head batch may dispatch: head arrival
/// plus the batching window, or as soon as a full batch is queued —
/// exactly the original `SimCore::candidate` readiness rule.
fn tenant_ready(queue: &VecDeque<u64>, window_ns: u64, max_batch: usize) -> Option<u64> {
    let head = *queue.front()?;
    let mut ready = head.saturating_add(window_ns);
    if queue.len() >= max_batch {
        ready = ready.min(queue[max_batch - 1]);
    }
    Some(ready)
}

/// [`DrrAccess`] view over a shard's tenant map (split borrow: the ring
/// and the map are disjoint fields).
struct TenantView<'a> {
    tenants: &'a mut BTreeMap<usize, TenantState>,
    window_ns: u64,
    max_batch: usize,
}

impl DrrAccess for TenantView<'_> {
    fn ready_ns(&self, gid: usize) -> u64 {
        let t = &self.tenants[&gid];
        tenant_ready(&t.queue, self.window_ns, self.max_batch).unwrap_or(u64::MAX)
    }

    fn cost(&self, gid: usize) -> u64 {
        self.tenants[&gid].queue.len().min(self.max_batch).max(1) as u64
    }

    fn weight(&self, gid: usize) -> u64 {
        self.tenants[&gid].weight
    }

    fn deficit(&self, gid: usize) -> u64 {
        self.tenants[&gid].deficit
    }

    fn set_deficit(&mut self, gid: usize, v: u64) {
        self.tenants.get_mut(&gid).unwrap().deficit = v;
    }
}

/// One shard-local scheduler. Between barriers it touches nothing
/// outside itself, which is the entire parallelism argument.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    id: usize,
    mode: SelectMode,
    grid: WinGrid,
    max_batch: usize,
    window_ns: u64,
    queue_depth: usize,
    quantum: u64,
    tenants: BTreeMap<usize, TenantState>,
    ring: DrrRing,
    /// Heap mode: min-heap over (ready_ns, gid), stamp-validated.
    ready: StampedHeap,
    /// Heap mode: min-heap over (next arrival, gid), cursor-validated.
    arr_heap: BinaryHeap<Reverse<(u64, usize)>>,
    replicas: ReplicaPool,
    total_queued: usize,
    last_depth_event: u64,
    makespan: u64,
    dispatched: u64,
    steals_in: u64,
    steals_out: u64,
    win_submitted: Vec<u64>,
    win_rejected: Vec<u64>,
    win_completed: Vec<u64>,
    win_met: Vec<u64>,
    win_batches: Vec<u64>,
    win_depth_area: Vec<u128>,
    win_peak: Vec<usize>,
    win_hist: Vec<LatencyHistogram>,
}

impl Shard {
    fn new(id: usize, cfg: &ShardConfig, grid: WinGrid) -> Self {
        Shard {
            id,
            mode: cfg.mode,
            grid,
            max_batch: cfg.max_batch,
            window_ns: cfg.batch_window_ns,
            queue_depth: cfg.queue_depth,
            quantum: cfg.quantum,
            tenants: BTreeMap::new(),
            ring: DrrRing::new(),
            ready: StampedHeap::new(),
            arr_heap: BinaryHeap::new(),
            replicas: ReplicaPool::new(cfg.replicas_per_shard),
            total_queued: 0,
            last_depth_event: 0,
            makespan: 0,
            dispatched: 0,
            steals_in: 0,
            steals_out: 0,
            win_submitted: vec![0; grid.n],
            win_rejected: vec![0; grid.n],
            win_completed: vec![0; grid.n],
            win_met: vec![0; grid.n],
            win_batches: vec![0; grid.n],
            win_depth_area: vec![0; grid.n],
            win_peak: vec![0; grid.n],
            win_hist: vec![LatencyHistogram::new(); grid.n],
        }
    }

    fn heap_mode(&self) -> bool {
        self.mode == SelectMode::Heap
    }

    /// The earliest unconsumed arrival `(time, gid)` over owned tenants.
    fn next_arrival(&mut self) -> Option<(u64, usize)> {
        match self.mode {
            SelectMode::LinearScan => self
                .tenants
                .iter()
                .filter(|(_, t)| t.cursor < t.arrivals.len())
                .map(|(&g, t)| (t.arrivals[t.cursor], g))
                .min(),
            SelectMode::Heap => loop {
                let &Reverse((t, g)) = self.arr_heap.peek()?;
                match self.tenants.get(&g) {
                    Some(ts) if ts.cursor < ts.arrivals.len() && ts.arrivals[ts.cursor] == t => {
                        return Some((t, g));
                    }
                    _ => {
                        self.arr_heap.pop();
                    }
                }
            },
        }
    }

    /// The earliest instant any backlogged tenant's batch may dispatch.
    fn ready_min(&mut self) -> Option<u64> {
        if self.ring.is_empty() {
            return None;
        }
        match self.mode {
            SelectMode::LinearScan => {
                let (window_ns, max_batch) = (self.window_ns, self.max_batch);
                self.ring
                    .iter()
                    .map(|g| {
                        let t = &self.tenants[&g];
                        (
                            tenant_ready(&t.queue, window_ns, max_batch)
                                .expect("ring tenant with empty queue"),
                            g,
                        )
                    })
                    .min()
                    .map(|(r, _)| r)
            }
            SelectMode::Heap => {
                let tenants = &self.tenants;
                self.ready
                    .peek_valid(|g| tenants.get(&g).map(|t| t.stamp).unwrap_or(u64::MAX))
                    .map(|(r, _)| r)
            }
        }
    }

    /// The next dispatch `(instant, replica)` — `max` of the earliest
    /// free replica and the earliest ready batch (the per-tenant
    /// `max(ready, free)` minimized over tenants distributes to this).
    fn next_dispatch(&mut self) -> Option<(u64, usize)> {
        let (fmin, rid) = match self.mode {
            SelectMode::LinearScan => self.replicas.scan_min(),
            SelectMode::Heap => self.replicas.peek_min(),
        }?;
        let ready = self.ready_min()?;
        Some((ready.max(fmin), rid))
    }

    /// Add a queue-depth span `[last_depth_event, now)` at the current
    /// backlog to the window integral. Within an epoch, spans never
    /// cross a window boundary (windows *are* epochs and barriers
    /// settle); drain-tail spans all land in the last window.
    fn settle_depth(&mut self, now: u64) {
        let from = self.last_depth_event;
        if now <= from {
            return;
        }
        if self.total_queued > 0 {
            let w = self.grid.window_of(from);
            self.win_depth_area[w] += self.total_queued as u128 * (now - from) as u128;
        }
        self.last_depth_event = now;
    }

    /// Consume tenant `gid`'s next arrival: admission control, queue
    /// push, ring/heap maintenance, depth accounting.
    fn ingest(&mut self, gid: usize) {
        let heap = self.heap_mode();
        let (window_ns, max_batch) = (self.window_ns, self.max_batch);
        if heap {
            // The validated top entry is this arrival; replace it with
            // the tenant's next one.
            self.arr_heap.pop();
        }
        let t = self.tenants.get_mut(&gid).unwrap();
        let at = t.arrivals[t.cursor];
        t.cursor += 1;
        let next = (t.cursor < t.arrivals.len()).then(|| t.arrivals[t.cursor]);
        t.submitted += 1;
        let w = self.grid.window_of(at);
        t.win_submitted[w] += 1;
        self.win_submitted[w] += 1;
        if t.queue.len() >= self.queue_depth {
            t.rejected += 1;
            self.win_rejected[w] += 1;
        } else {
            // Tenant + shard depth integrals advance to the arrival.
            let dt = at.saturating_sub(t.last_event);
            t.depth_area += t.queue.len() as u128 * dt as u128;
            t.last_event = at;
            let was_empty = t.queue.is_empty();
            t.queue.push_back(at);
            t.peak_depth = t.peak_depth.max(t.queue.len());
            let became_full = t.queue.len() == max_batch;
            if was_empty || became_full {
                // The tenant's ready instant changed (appeared, or
                // dropped to "batch full"): version the heap entry.
                t.stamp += 1;
                let entry = heap.then(|| {
                    (
                        tenant_ready(&t.queue, window_ns, max_batch).unwrap(),
                        t.stamp,
                    )
                });
                if was_empty {
                    self.ring.push(gid);
                }
                if let Some((rdy, stamp)) = entry {
                    self.ready.push(rdy, gid, stamp);
                }
            }
            self.settle_depth(at);
            self.total_queued += 1;
            self.win_peak[w] = self.win_peak[w].max(self.total_queued);
        }
        if heap {
            if let Some(nt) = next {
                self.arr_heap.push(Reverse((nt, gid)));
            }
        }
    }

    /// Dispatch one batch on replica `rid` at instant `at`: DRR selects
    /// the tenant, the batch drains, and completion-side accounting
    /// streams into the tenant and window accumulators.
    fn dispatch(&mut self, specs: &[TenantSpec], rid: usize, at: u64) {
        let (window_ns, max_batch, quantum) = (self.window_ns, self.max_batch, self.quantum);
        let gid = {
            let mut view = TenantView {
                tenants: &mut self.tenants,
                window_ns,
                max_batch,
            };
            self.ring.select(&mut view, at, quantum)
        };
        self.settle_depth(at);
        let (batch, emptied, swapped) = {
            let t = self.tenants.get_mut(&gid).unwrap();
            let dt = at.saturating_sub(t.last_event);
            t.depth_area += t.queue.len() as u128 * dt as u128;
            t.last_event = at;
            let n = t.queue.len().min(max_batch);
            let batch: Vec<u64> = t.queue.drain(..n).collect();
            (batch, t.queue.is_empty(), t.swapped)
        };
        self.total_queued -= batch.len();
        let spec = &specs[gid];
        let dep = if swapped {
            spec.alt_deployment.as_ref().expect("swapped without alt")
        } else {
            &spec.deployment
        };
        let n = batch.len();
        let service = dep.service_ns(n);
        let completion = at + service;
        let w = self.grid.window_of(completion);
        {
            let t = self.tenants.get_mut(&gid).unwrap();
            t.completed += n as u64;
            t.batches += 1;
            t.attained_ns += service;
            t.win_attained[w] += service;
            t.energy_nj += n as f64 * dep.energy_per_request_nj();
            for &arr in &batch {
                let l = completion - arr;
                t.hist.record(l);
                t.lat_sum += l as u128;
                t.max_lat = t.max_lat.max(l);
                if l <= t.slo_ns {
                    t.met += 1;
                    self.win_met[w] += 1;
                }
                self.win_hist[w].record(l);
            }
        }
        self.win_completed[w] += n as u64;
        self.win_batches[w] += 1;
        {
            let mut view = TenantView {
                tenants: &mut self.tenants,
                window_ns,
                max_batch,
            };
            self.ring.served(&mut view, gid, emptied);
        }
        let t = self.tenants.get_mut(&gid).unwrap();
        t.stamp += 1;
        if !emptied && self.mode == SelectMode::Heap {
            let rdy = tenant_ready(&t.queue, window_ns, max_batch).unwrap();
            let stamp = t.stamp;
            self.ready.push(rdy, gid, stamp);
        }
        self.replicas.set_free(rid, completion);
        self.makespan = self.makespan.max(completion);
        self.dispatched += 1;
    }

    /// Run the shard's recurrence up to (exclusive) `e_end`: arrivals at
    /// or before the pending dispatch instant are ingested first —
    /// identical to the original loop's "arrivals at the dispatch
    /// instant join the batch" rule. `u64::MAX` drains everything.
    pub(crate) fn step(&mut self, specs: &[TenantSpec], e_end: u64) {
        loop {
            let na = self.next_arrival();
            let disp = self.next_dispatch();
            if let Some((t, gid)) = na {
                let take = match disp {
                    Some((at, _)) if at < e_end => t <= at,
                    _ => t < e_end,
                };
                if take {
                    self.ingest(gid);
                    continue;
                }
            }
            match disp {
                Some((at, rid)) if at < e_end => self.dispatch(specs, rid, at),
                _ => break,
            }
        }
    }

    /// Detach tenant `gid` for migration. Its shard-side heap entries go
    /// stale via the ownership check / stamp bump.
    fn remove_tenant(&mut self, gid: usize) -> TenantState {
        let mut t = self.tenants.remove(&gid).expect("migrating unknown tenant");
        self.ring.remove(gid);
        self.total_queued -= t.queue.len();
        t.stamp += 1;
        t
    }

    /// Attach a migrated tenant.
    fn add_tenant(&mut self, mut t: TenantState) {
        let gid = t.gid;
        t.stamp += 1;
        self.total_queued += t.queue.len();
        if !t.queue.is_empty() {
            self.ring.push(gid);
            if self.heap_mode() {
                let rdy = tenant_ready(&t.queue, self.window_ns, self.max_batch).unwrap();
                self.ready.push(rdy, gid, t.stamp);
            }
        }
        if self.heap_mode() && t.cursor < t.arrivals.len() {
            self.arr_heap.push(Reverse((t.arrivals[t.cursor], gid)));
        }
        self.tenants.insert(gid, t);
    }

    /// Earliest-free active replica (mode-consistent tie-break).
    fn min_free(&mut self) -> Option<(u64, usize)> {
        match self.mode {
            SelectMode::LinearScan => self.replicas.scan_min(),
            SelectMode::Heap => self.replicas.peek_min(),
        }
    }
}

/// The assembled sharded simulation: shards plus barrier state. Public
/// within the crate so the epoch-parallel driver in [`crate::parallel`]
/// can step shards concurrently.
pub(crate) struct ShardedSim<'a> {
    pub(crate) specs: &'a [TenantSpec],
    wl: Workload,
    cfg: ShardConfig,
    grid: WinGrid,
    pub(crate) shards: Vec<Shard>,
    engine: Option<AlertEngine>,
    base_share: Vec<f64>,
    cooldown: usize,
    total_active: usize,
    peak_active: usize,
    scale_events: Vec<ScaleEvent>,
    steal_events: Vec<StealEvent>,
    swap_events: Vec<SwapEvent>,
    epoch_signals: Vec<EpochSignal>,
}

/// The autoscaler's alert rules — shared with the post-hoc timeline in
/// [`crate::telemetry`] so both evaluate the identical discipline.
pub(crate) fn autoscale_rules(spec: &AutoscaleSpec) -> Vec<AlertRule> {
    vec![
        AlertRule::Threshold(
            ThresholdRule::above(SCALE_UP_RULE, "epoch_queue_depth", spec.high_depth)
                .for_samples(spec.for_epochs)
                .clear_samples(spec.clear_epochs),
        ),
        AlertRule::Threshold(
            ThresholdRule::below(SCALE_DOWN_RULE, "epoch_queue_depth", spec.low_depth)
                .for_samples(spec.for_epochs)
                .clear_samples(spec.clear_epochs),
        ),
        AlertRule::Threshold(
            ThresholdRule::below(SCALE_SLO_RULE, "epoch_slo", spec.slo_floor)
                .for_samples(spec.for_epochs)
                .clear_samples(spec.clear_epochs),
        ),
    ]
}

/// An [`AlertEngine`] loaded with the autoscaler's rules.
pub(crate) fn autoscale_engine(spec: &AutoscaleSpec) -> AlertEngine {
    let mut e = AlertEngine::new();
    for r in autoscale_rules(spec) {
        e.add_rule(r);
    }
    e
}

impl<'a> ShardedSim<'a> {
    pub(crate) fn new(specs: &'a [TenantSpec], wl: &Workload, cfg: &ShardConfig) -> Self {
        cfg.validate();
        let grid = WinGrid::new(wl.horizon_ns, cfg.epochs);
        let mut shards: Vec<Shard> = (0..cfg.shards).map(|s| Shard::new(s, cfg, grid)).collect();
        for (gid, spec) in specs.iter().enumerate() {
            let t = TenantState::new(gid, spec, wl, grid.n);
            shards[gid % cfg.shards].add_tenant(t);
        }
        let total_rate: f64 = specs.iter().map(|s| s.rate_rps).sum();
        let base_share = specs
            .iter()
            .map(|s| {
                if total_rate > 0.0 {
                    s.rate_rps / total_rate
                } else {
                    0.0
                }
            })
            .collect();
        let total_active = cfg.shards * cfg.replicas_per_shard;
        ShardedSim {
            specs,
            wl: *wl,
            cfg: *cfg,
            grid,
            shards,
            engine: cfg.autoscale.as_ref().map(autoscale_engine),
            base_share,
            cooldown: 0,
            total_active,
            peak_active: total_active,
            scale_events: Vec::new(),
            steal_events: Vec::new(),
            swap_events: Vec::new(),
            epoch_signals: Vec::new(),
        }
    }

    /// Barrier instants: epoch `e` ends at `(e+1)·win_len`, the last at
    /// the horizon.
    pub(crate) fn epoch_ends(&self) -> Vec<u64> {
        (0..self.cfg.epochs)
            .map(|e| self.grid.end_of(e, self.wl.horizon_ns))
            .collect()
    }

    /// The epoch barrier: settle → steal → autoscale → swap, each in a
    /// fixed deterministic order.
    pub(crate) fn barrier(&mut self, epoch: usize, t_end: u64) {
        for sh in &mut self.shards {
            sh.settle_depth(t_end);
        }
        if self.cfg.steal.is_some() {
            self.steal(epoch, t_end);
        }
        let sig = self.epoch_signal(epoch, t_end);
        self.epoch_signals.push(sig);
        if self.cfg.autoscale.is_some() {
            self.autoscale(epoch, t_end, sig);
        }
        if self.cfg.swap.is_some() {
            self.swap(epoch, t_end);
        }
    }

    fn epoch_signal(&self, epoch: usize, t_end: u64) -> EpochSignal {
        let start = self.grid.start_of(epoch);
        let span = (t_end - start).max(1);
        let area: u128 = self.shards.iter().map(|s| s.win_depth_area[epoch]).sum();
        let completed: u64 = self.shards.iter().map(|s| s.win_completed[epoch]).sum();
        let met: u64 = self.shards.iter().map(|s| s.win_met[epoch]).sum();
        EpochSignal {
            t_ns: t_end,
            mean_queue_depth: area as f64 / span as f64,
            slo_attainment: if completed == 0 {
                1.0
            } else {
                met as f64 / completed as f64
            },
            backlog: self.shards.iter().map(|s| s.total_queued as u64).sum(),
        }
    }

    /// Work stealing: pair idle thieves with backlogged victims
    /// (ascending thief id; victims by descending backlog, ties to the
    /// lower id) and migrate each victim's most backlogged tenant.
    fn steal(&mut self, epoch: usize, t_end: u64) {
        let spec = self.cfg.steal.unwrap();
        let mut thieves: Vec<usize> = Vec::new();
        let mut victims: Vec<(usize, usize)> = Vec::new(); // (backlog, id)
        for s in 0..self.shards.len() {
            let backlog = self.shards[s].total_queued;
            let idle_replica = self.shards[s].min_free().is_some_and(|(f, _)| f <= t_end);
            if backlog <= spec.max_thief_backlog && idle_replica {
                thieves.push(s);
            } else if backlog >= spec.min_victim_backlog && self.shards[s].tenants.len() >= 2 {
                victims.push((backlog, s));
            }
        }
        victims.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (&thief, &(_, victim)) in thieves.iter().zip(victims.iter()) {
            // Most backlogged tenant, ties to the lowest gid (BTreeMap
            // iteration is ascending, strict `>` keeps the first max).
            let Some((gid, moved)) = self.shards[victim]
                .tenants
                .iter()
                .map(|(&g, t)| (t.queue.len(), g))
                .fold(None, |best: Option<(usize, usize)>, (len, g)| match best {
                    Some((bl, bg)) if bl >= len => Some((bl, bg)),
                    _ => Some((len, g)),
                })
                .map(|(len, g)| (g, len))
            else {
                continue;
            };
            if moved == 0 {
                continue;
            }
            let t = self.shards[victim].remove_tenant(gid);
            self.shards[thief].add_tenant(t);
            self.shards[victim].steals_out += 1;
            self.shards[thief].steals_in += 1;
            self.steal_events.push(StealEvent {
                t_ns: t_end,
                epoch,
                tenant: gid,
                from_shard: victim,
                to_shard: thief,
                moved_requests: moved,
            });
        }
    }

    fn autoscale(&mut self, epoch: usize, t_end: u64, sig: EpochSignal) {
        let spec = self.cfg.autoscale.unwrap();
        let engine = self.engine.as_mut().unwrap();
        engine.observe(
            t_end,
            &[
                ("epoch_queue_depth", sig.mean_queue_depth),
                ("epoch_slo", sig.slo_attainment),
            ],
        );
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        let up = engine.is_firing(SCALE_UP_RULE) || engine.is_firing(SCALE_SLO_RULE);
        let down = engine.is_firing(SCALE_DOWN_RULE);
        if up && self.total_active < spec.max_replicas {
            // Most backlogged shard gets the replica (ties → lowest id).
            let sid = (0..self.shards.len())
                .max_by_key(|&s| (self.shards[s].total_queued, Reverse(s)))
                .unwrap();
            let rid = self.shards[sid].replicas.add(t_end);
            self.total_active += 1;
            self.peak_active = self.peak_active.max(self.total_active);
            self.cooldown = spec.cooldown_epochs;
            self.scale_events.push(ScaleEvent {
                t_ns: t_end,
                epoch,
                up: true,
                shard: sid,
                replica: rid,
                active_after: self.total_active,
            });
        } else if down && !up && self.total_active > spec.min_replicas {
            // Least backlogged shard that keeps ≥ 1 replica drains its
            // highest-id active replica (in-flight work still completes:
            // retirement only stops future dispatches).
            let Some(sid) = (0..self.shards.len())
                .filter(|&s| self.shards[s].replicas.active() >= 2)
                .min_by_key(|&s| (self.shards[s].total_queued, s))
            else {
                return;
            };
            let rid = *self.shards[sid].replicas.active_ids().last().unwrap();
            self.shards[sid].replicas.retire(rid);
            self.total_active -= 1;
            self.cooldown = spec.cooldown_epochs;
            self.scale_events.push(ScaleEvent {
                t_ns: t_end,
                epoch,
                up: false,
                shard: sid,
                replica: rid,
                active_after: self.total_active,
            });
        }
    }

    /// Online strategy swap: one-way, per tenant, when the epoch share
    /// drifts past the threshold. The remap pause starts at the barrier
    /// (or when the chosen replica's in-flight batch drains, whichever
    /// is later), so no request is lost: queued work simply waits.
    fn swap(&mut self, epoch: usize, t_end: u64) {
        let spec = self.cfg.swap.unwrap();
        let total: u64 = self.shards.iter().map(|s| s.win_submitted[epoch]).sum();
        if total < spec.min_epoch_requests {
            return;
        }
        for gid in 0..self.specs.len() {
            if self.specs[gid].alt_deployment.is_none() {
                continue;
            }
            let owner = (0..self.shards.len())
                .find(|&s| self.shards[s].tenants.contains_key(&gid))
                .expect("tenant owned by no shard");
            let t = &self.shards[owner].tenants[&gid];
            if t.swapped {
                continue;
            }
            let share = t.win_submitted[epoch] as f64 / total as f64;
            let base = self.base_share[gid];
            if share <= spec.share_factor * base {
                continue;
            }
            let sh = &mut self.shards[owner];
            sh.tenants.get_mut(&gid).unwrap().swapped = true;
            let (free, rid) = sh.min_free().expect("shard without active replica");
            sh.replicas.set_free(rid, free.max(t_end) + spec.remap_ns);
            self.swap_events.push(SwapEvent {
                t_ns: t_end,
                epoch,
                tenant: gid,
                shard: owner,
                replica: rid,
                share,
                base_share: base,
            });
        }
    }

    /// Assemble the final report (consumes the sim).
    pub(crate) fn finish(mut self) -> ShardServingReport {
        let n = self.specs.len();
        let horizon = self.wl.horizon_ns;
        let makespan = self
            .shards
            .iter()
            .map(|s| s.makespan)
            .max()
            .unwrap_or(0)
            .max(horizon);
        let span_s = makespan as f64 * 1e-9;
        // Collect tenants back out of their final shards, by gid.
        let mut owners: Vec<usize> = vec![0; n];
        let mut states: Vec<Option<TenantState>> = (0..n).map(|_| None).collect();
        for sh in &mut self.shards {
            let ids: Vec<usize> = sh.tenants.keys().copied().collect();
            for gid in ids {
                owners[gid] = sh.id;
                states[gid] = Some(sh.tenants.remove(&gid).unwrap());
            }
        }
        let states: Vec<TenantState> = states.into_iter().map(|t| t.unwrap()).collect();
        let tenants: Vec<ShardTenantStats> = states
            .iter()
            .map(|t| ShardTenantStats {
                name: self.specs[t.gid].name.clone(),
                weight: t.weight,
                shard: owners[t.gid],
                submitted: t.submitted,
                completed: t.completed,
                rejected: t.rejected,
                batches: t.batches,
                p50_ns: t.hist.quantile(0.50),
                p95_ns: t.hist.quantile(0.95),
                p99_ns: t.hist.quantile(0.99),
                max_ns: t.max_lat,
                mean_ns: if t.completed == 0 {
                    0.0
                } else {
                    t.lat_sum as f64 / t.completed as f64
                },
                slo_ns: t.slo_ns,
                slo_attainment: if t.submitted == 0 {
                    1.0
                } else {
                    t.met as f64 / t.submitted as f64
                },
                throughput_rps: if span_s > 0.0 {
                    t.completed as f64 / span_s
                } else {
                    0.0
                },
                energy_nj: t.energy_nj,
                attained_service_ns: t.attained_ns,
                peak_queue_depth: t.peak_depth as u64,
                mean_queue_depth: t.depth_area as f64 / makespan.max(1) as f64,
                swapped: t.swapped,
                histogram: t.hist.clone(),
            })
            .collect();
        let fairness = jain_index(
            states
                .iter()
                .filter(|t| t.submitted > 0)
                .map(|t| t.attained_ns as f64 / t.weight as f64),
        );
        let windows: Vec<WindowStats> = (0..self.grid.n)
            .map(|w| {
                let start_ns = self.grid.start_of(w);
                let end_ns = start_ns + self.grid.len;
                let covered_to = if w + 1 == self.grid.n {
                    makespan.max(end_ns)
                } else {
                    end_ns
                };
                let span = (covered_to - start_ns).max(1);
                let sum = |f: &dyn Fn(&Shard) -> u64| -> u64 { self.shards.iter().map(f).sum() };
                let submitted = sum(&|s| s.win_submitted[w]);
                let rejected = sum(&|s| s.win_rejected[w]);
                let completed = sum(&|s| s.win_completed[w]);
                let met = sum(&|s| s.win_met[w]);
                let batches = sum(&|s| s.win_batches[w]);
                let area: u128 = self.shards.iter().map(|s| s.win_depth_area[w]).sum();
                let mut hist = LatencyHistogram::new();
                for s in &self.shards {
                    hist.merge(&s.win_hist[w]);
                }
                WindowStats {
                    index: w,
                    start_ns,
                    end_ns,
                    submitted,
                    rejected,
                    completed,
                    batches,
                    mean_batch_size: if batches == 0 {
                        0.0
                    } else {
                        completed as f64 / batches as f64
                    },
                    batch_occupancy: if batches == 0 {
                        0.0
                    } else {
                        completed as f64 / (batches * self.cfg.max_batch as u64) as f64
                    },
                    slo_attainment: if completed == 0 {
                        1.0
                    } else {
                        met as f64 / completed as f64
                    },
                    mean_queue_depth: area as f64 / span as f64,
                    // Sum of per-shard peaks: an upper bound on the
                    // global instantaneous backlog peak (shard clocks
                    // are not aligned within an epoch).
                    peak_queue_depth: self.shards.iter().map(|s| s.win_peak[w] as u64).sum(),
                    downtime_ns: 0,
                    fairness_index: jain_index(
                        states
                            .iter()
                            .filter(|t| t.win_attained[w] > 0)
                            .map(|t| t.win_attained[w] as f64 / t.weight as f64),
                    ),
                    histogram: hist,
                }
            })
            .collect();
        let total_submitted: u64 = tenants.iter().map(|t| t.submitted).sum();
        let total_completed: u64 = tenants.iter().map(|t| t.completed).sum();
        let total_rejected: u64 = tenants.iter().map(|t| t.rejected).sum();
        let batches: u64 = tenants.iter().map(|t| t.batches).sum();
        ShardServingReport {
            seed: self.wl.seed,
            horizon_ns: horizon,
            makespan_ns: makespan,
            shards: self.cfg.shards,
            epochs: self.cfg.epochs,
            replicas_initial: self.cfg.shards * self.cfg.replicas_per_shard,
            replicas_final: self.total_active,
            replicas_peak: self.peak_active,
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                total_completed as f64 / batches as f64
            },
            total_submitted,
            total_completed,
            total_rejected,
            total_energy_nj: tenants.iter().map(|t| t.energy_nj).sum(),
            aggregate_throughput_rps: if span_s > 0.0 {
                total_completed as f64 / span_s
            } else {
                0.0
            },
            fairness_index: fairness,
            tenants,
            shard_stats: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    shard: s.id,
                    tenants: 0, // re-filled below (tenants were drained)
                    replicas_active: s.replicas.active(),
                    replicas_total: s.replicas.len(),
                    dispatched_batches: s.dispatched,
                    steals_in: s.steals_in,
                    steals_out: s.steals_out,
                    makespan_ns: s.makespan,
                })
                .enumerate()
                .map(|(sid, mut st)| {
                    st.tenants = owners.iter().filter(|&&o| o == sid).count();
                    st
                })
                .collect(),
            windows,
            epoch_signals: self.epoch_signals,
            scale_events: self.scale_events,
            steal_events: self.steal_events,
            swap_events: self.swap_events,
        }
    }
}

/// Run the sharded simulation sequentially: step every shard to each
/// barrier, run the barrier, then drain. The epoch-parallel driver in
/// [`crate::parallel`] replays exactly this schedule with shards stepped
/// concurrently between barriers.
fn run_sequential(tenants: &[TenantSpec], wl: &Workload, cfg: &ShardConfig) -> ShardServingReport {
    let _span = autohet_obs::trace::span("serve.run_sharded");
    let mut sim = ShardedSim::new(tenants, wl, cfg);
    let ends = sim.epoch_ends();
    for (e, &end) in ends.iter().enumerate() {
        for sh in &mut sim.shards {
            sh.step(tenants, end);
        }
        sim.barrier(e, end);
    }
    for sh in &mut sim.shards {
        sh.step(tenants, u64::MAX);
    }
    sim.finish()
}

/// The sharded serving runtime (heap-mode scheduler unless the config
/// says otherwise).
pub fn run_sharded(tenants: &[TenantSpec], wl: &Workload, cfg: &ShardConfig) -> ShardServingReport {
    run_sequential(tenants, wl, cfg)
}

/// The linear-scan sequential reference: identical decisions through
/// O(tenants)/O(replicas) scans — the baseline the bit-identity tests
/// and the `BENCH_serve` speedup measure against.
pub fn run_sharded_reference(
    tenants: &[TenantSpec],
    wl: &Workload,
    cfg: &ShardConfig,
) -> ShardServingReport {
    let cfg = ShardConfig {
        mode: SelectMode::LinearScan,
        ..*cfg
    };
    run_sequential(tenants, wl, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::workload::{BurstSpec, RampSpec};
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn deployment(model: autohet_dnn::Model, shape: XbarShape) -> Deployment {
        let strategy = vec![shape; model.layers.len()];
        Deployment::compile(&model.name, &model, &strategy, &AccelConfig::default())
    }

    fn fleet(n: usize) -> Vec<TenantSpec> {
        let lenet = deployment(zoo::lenet5(), XbarShape::square(128));
        let micro = deployment(zoo::micro_cnn(), XbarShape::square(128));
        (0..n)
            .map(|i| {
                let dep = if i % 2 == 0 {
                    lenet.clone()
                } else {
                    micro.clone()
                };
                let rate = 0.25 * dep.max_rate_rps() * (1.0 + (i % 3) as f64 * 0.5);
                let slo = (8.0 * dep.pipeline.fill_ns) as u64;
                let mut spec = TenantSpec::new(&format!("t{i}"), dep, rate, slo)
                    .with_weight(1 + (i % 4) as u64);
                if i % 5 == 0 {
                    spec = spec.with_burst(BurstSpec {
                        period_ns: 30_000_000,
                        burst_ns: 6_000_000,
                        factor: 5.0,
                    });
                }
                spec
            })
            .collect()
    }

    #[test]
    fn heap_mode_is_bit_identical_to_the_linear_scan_reference() {
        let tenants = fleet(9);
        let wl = Workload {
            seed: 77,
            horizon_ns: 60_000_000,
        };
        for shards in [1usize, 2, 3, 8] {
            let cfg = ShardConfig {
                shards,
                replicas_per_shard: 2,
                epochs: 12,
                steal: Some(StealSpec::default()),
                ..ShardConfig::default()
            };
            let heap = run_sharded(&tenants, &wl, &cfg);
            let scan = run_sharded_reference(&tenants, &wl, &cfg);
            assert_eq!(heap, scan, "shards={shards}");
        }
    }

    #[test]
    fn every_admitted_request_completes() {
        let tenants = fleet(7);
        let wl = Workload {
            seed: 5,
            horizon_ns: 50_000_000,
        };
        let cfg = ShardConfig {
            shards: 3,
            queue_depth: 4, // force rejections too
            ..ShardConfig::default()
        };
        let r = run_sharded(&tenants, &wl, &cfg);
        assert!(r.total_submitted > 0);
        assert_eq!(r.lost_requests(), 0);
        for t in &r.tenants {
            assert_eq!(t.submitted, t.completed + t.rejected, "{}", t.name);
        }
    }

    #[test]
    fn stealing_migrates_tenants_and_preserves_totals() {
        let tenants = fleet(8);
        let wl = Workload {
            seed: 11,
            horizon_ns: 80_000_000,
        };
        let base = ShardConfig {
            shards: 4,
            epochs: 20,
            ..ShardConfig::default()
        };
        let with_steal = ShardConfig {
            steal: Some(StealSpec {
                min_victim_backlog: 4,
                max_thief_backlog: 1,
            }),
            ..base
        };
        let stolen = run_sharded(&tenants, &wl, &with_steal);
        assert!(
            !stolen.steal_events.is_empty(),
            "expected at least one migration under an imbalanced fleet"
        );
        assert_eq!(stolen.lost_requests(), 0);
        // Submission totals are workload-determined, identical with and
        // without stealing; only queueing (and thus completion times)
        // may differ.
        let plain = run_sharded(&tenants, &wl, &base);
        assert_eq!(plain.total_submitted, stolen.total_submitted);
    }

    #[test]
    fn autoscaler_adds_replicas_under_burst_and_drains_after() {
        let micro = deployment(zoo::micro_cnn(), XbarShape::square(128));
        let rate = 0.9 * micro.max_rate_rps();
        let slo = (10.0 * micro.pipeline.fill_ns) as u64;
        // One tenant slams the single replica during a mid-run burst.
        let tenants = vec![TenantSpec::new("hot", micro, rate, slo)
            .with_burst(BurstSpec {
                period_ns: 200_000_000,
                burst_ns: 60_000_000,
                factor: 6.0,
            })
            .with_weight(2)];
        let wl = Workload {
            seed: 9,
            horizon_ns: 200_000_000,
        };
        let cfg = ShardConfig {
            shards: 1,
            epochs: 40,
            queue_depth: 512,
            autoscale: Some(AutoscaleSpec {
                high_depth: 12.0,
                // Post-burst batching keeps ~1 request in flight even
                // over-provisioned, so the drain threshold sits above it.
                low_depth: 2.0,
                for_epochs: 2,
                clear_epochs: 2,
                min_replicas: 1,
                max_replicas: 8,
                cooldown_epochs: 0,
                ..AutoscaleSpec::default()
            }),
            ..ShardConfig::default()
        };
        let r = run_sharded(&tenants, &wl, &cfg);
        let ups = r.scale_events.iter().filter(|e| e.up).count();
        let downs = r.scale_events.iter().filter(|e| !e.up).count();
        assert!(ups >= 1, "no scale-up under engineered burst");
        assert!(downs >= 1, "no drain after the burst passed");
        assert!(r.replicas_peak > r.replicas_initial);
        assert_eq!(r.lost_requests(), 0);
        // Identical decisions in the reference mode.
        let scan = run_sharded_reference(&tenants, &wl, &cfg);
        assert_eq!(r, scan);
    }

    #[test]
    fn drifting_mix_triggers_swap_with_zero_lost_requests() {
        let lenet = deployment(zoo::lenet5(), XbarShape::square(128));
        let micro = deployment(zoo::micro_cnn(), XbarShape::square(128));
        let alt = deployment(zoo::lenet5(), XbarShape::new(256, 128));
        let slo = (12.0 * lenet.pipeline.fill_ns) as u64;
        let base_rate = 0.2 * lenet.max_rate_rps();
        let tenants = vec![
            TenantSpec::new("drifter", lenet, base_rate, slo)
                .with_ramp(RampSpec {
                    start_ns: 20_000_000,
                    end_ns: 60_000_000,
                    to_factor: 8.0,
                })
                .with_alt(alt),
            TenantSpec::new("steady", micro.clone(), 0.4 * micro.max_rate_rps(), slo),
        ];
        let wl = Workload {
            seed: 21,
            horizon_ns: 120_000_000,
        };
        let cfg = ShardConfig {
            shards: 2,
            epochs: 24,
            queue_depth: 4096,
            swap: Some(SwapSpec {
                share_factor: 1.5,
                min_epoch_requests: 16,
                remap_ns: 2_000_000,
            }),
            ..ShardConfig::default()
        };
        let r = run_sharded(&tenants, &wl, &cfg);
        assert_eq!(r.swap_events.len(), 1, "expected exactly one swap");
        assert!(r.tenants[0].swapped);
        assert!(!r.tenants[1].swapped);
        assert_eq!(r.lost_requests(), 0, "swap must not lose requests");
        // The swap epoch comes after the drift onset.
        assert!(r.swap_events[0].t_ns > 20_000_000);
        // Bit-identical under the reference scheduler.
        let scan = run_sharded_reference(&tenants, &wl, &cfg);
        assert_eq!(r, scan);
    }

    #[test]
    fn weights_shift_attained_service_under_contention() {
        // Two identical tenants driving sustained overload against a
        // bounded queue (so excess load is shed, not merely delayed),
        // weights 1 vs 4: attained service splits along the weights.
        let micro = deployment(zoo::micro_cnn(), XbarShape::square(128));
        let rate = 3.0 * micro.max_rate_rps();
        let slo = (6.0 * micro.pipeline.fill_ns) as u64;
        let tenants = vec![
            TenantSpec::new("light", micro.clone(), rate, slo).with_weight(1),
            TenantSpec::new("heavy", micro.clone(), rate, slo).with_weight(4),
        ];
        let wl = Workload {
            seed: 3,
            horizon_ns: 60_000_000,
        };
        let cfg = ShardConfig {
            shards: 1,
            queue_depth: 16,
            ..ShardConfig::default()
        };
        let r = run_sharded(&tenants, &wl, &cfg);
        assert!(r.total_rejected > 0, "scenario must actually shed load");
        let light = r.tenants[0].attained_service_ns as f64;
        let heavy = r.tenants[1].attained_service_ns as f64;
        assert!(
            heavy > 2.0 * light,
            "weight-4 tenant attained {heavy} vs weight-1 {light}"
        );
        assert!(r.fairness_index > 0.8, "weighted Jain {}", r.fairness_index);
    }

    #[test]
    fn windows_line_up_with_epochs_and_conserve_counts() {
        let tenants = fleet(5);
        let wl = Workload {
            seed: 42,
            horizon_ns: 30_000_000,
        };
        let cfg = ShardConfig {
            shards: 2,
            epochs: 6,
            ..ShardConfig::default()
        };
        let r = run_sharded(&tenants, &wl, &cfg);
        assert_eq!(r.windows.len(), 6);
        assert_eq!(r.epoch_signals.len(), 6);
        let sub: u64 = r.windows.iter().map(|w| w.submitted).sum();
        let comp: u64 = r.windows.iter().map(|w| w.completed).sum();
        assert_eq!(sub, r.total_submitted);
        assert_eq!(comp, r.total_completed);
        for w in &r.windows {
            assert!(w.fairness_index >= 0.0 && w.fairness_index <= 1.0);
        }
    }
}
