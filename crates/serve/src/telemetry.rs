//! Bridges from serving reports to the `autohet-obs` substrate:
//! per-window telemetry as a [`Series`] table and run totals mirrored
//! into a metrics [`Registry`].

use crate::report::ServingReport;
use autohet_obs::{Registry, Series};

/// Column schema of [`window_series`] (name, unit), kept in one place so
/// docs and exporters cannot drift apart.
pub const WINDOW_COLUMNS: [(&str, &str); 13] = [
    ("window", ""),
    ("start", "ns"),
    ("end", "ns"),
    ("submitted", "req"),
    ("rejected", "req"),
    ("completed", "req"),
    ("batches", ""),
    ("mean_batch_size", "req"),
    ("batch_occupancy", ""),
    ("slo_attainment", ""),
    ("mean_queue_depth", "req"),
    ("peak_queue_depth", "req"),
    ("downtime", "ns"),
];

/// The report's per-window telemetry as a time-series table (one row per
/// window, columns per [`WINDOW_COLUMNS`]). Empty when the run was
/// configured without telemetry windows.
pub fn window_series(report: &ServingReport) -> Series {
    let mut s = Series::new("serving_windows", &WINDOW_COLUMNS);
    for w in &report.windows {
        s.push(vec![
            w.index as f64,
            w.start_ns as f64,
            w.end_ns as f64,
            w.submitted as f64,
            w.rejected as f64,
            w.completed as f64,
            w.batches as f64,
            w.mean_batch_size,
            w.batch_occupancy,
            w.slo_attainment,
            w.mean_queue_depth,
            w.peak_queue_depth as f64,
            w.downtime_ns as f64,
        ]);
    }
    s
}

/// Mirror a serving run's totals into `registry` under `prefix`:
/// counters for request accounting and batches, a gauge for replicas,
/// and the merged latency distribution as a `{prefix}.latency_ns`
/// histogram (same log₂ binning on both sides).
pub fn publish_report(report: &ServingReport, registry: &Registry, prefix: &str) {
    let c = |name: &str, v: u64| registry.counter(&format!("{prefix}.{name}")).add(v);
    c("completed", report.total_completed);
    c("rejected", report.total_rejected);
    c("failed", report.total_failed);
    c("retried", report.total_retried);
    c("batches", report.batches);
    registry
        .gauge(&format!("{prefix}.replicas"))
        .set(report.replicas as i64);
    registry
        .histogram(&format!("{prefix}.latency_ns"))
        .merge_bins(&report.overall_histogram().bins);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::sim::{run_serving, ServeConfig};
    use crate::workload::{TenantSpec, Workload};
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn report(windows: usize) -> ServingReport {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        let d = Deployment::compile("lenet", &m, &strategy, &AccelConfig::default());
        let rate = 0.7 * d.max_rate_rps();
        let slo = (8.0 * d.pipeline.fill_ns) as u64;
        let tenants = vec![TenantSpec::new("lenet", d, rate, slo)];
        let wl = Workload {
            seed: 7,
            horizon_ns: (1_000.0 / rate * 1e9) as u64,
        };
        let cfg = ServeConfig {
            telemetry_windows: windows,
            ..ServeConfig::default()
        };
        run_serving(&tenants, &wl, &cfg)
    }

    #[test]
    fn windows_partition_the_run() {
        let r = report(8);
        assert_eq!(r.windows.len(), 8);
        // Window accounting conserves the run totals.
        let submitted: u64 = r.windows.iter().map(|w| w.submitted).sum();
        let rejected: u64 = r.windows.iter().map(|w| w.rejected).sum();
        let completed: u64 = r.windows.iter().map(|w| w.completed).sum();
        let batches: u64 = r.windows.iter().map(|w| w.batches).sum();
        assert_eq!(submitted, r.tenants[0].submitted);
        assert_eq!(rejected, r.total_rejected);
        assert_eq!(completed, r.total_completed);
        assert_eq!(batches, r.batches);
        // Window histograms merge to the overall distribution.
        let mut merged = crate::report::LatencyHistogram::new();
        for w in &r.windows {
            merged.merge(&w.histogram);
        }
        assert_eq!(merged, r.overall_histogram());
        // Windows tile [0, horizon) contiguously.
        for (i, w) in r.windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert_eq!(w.end_ns - w.start_ns, r.windows[0].end_ns);
            if i > 0 {
                assert_eq!(w.start_ns, r.windows[i - 1].end_ns);
            }
            assert!(w.slo_attainment >= 0.0 && w.slo_attainment <= 1.0);
            assert!(w.batch_occupancy >= 0.0 && w.batch_occupancy <= 1.0);
            assert!(w.mean_queue_depth >= 0.0);
        }
    }

    #[test]
    fn window_telemetry_does_not_perturb_the_rest_of_the_report() {
        let off = report(0);
        let on = report(8);
        assert!(off.windows.is_empty());
        assert_eq!(off.tenants, on.tenants);
        assert_eq!(off.batches, on.batches);
        assert_eq!(off.makespan_ns, on.makespan_ns);
        assert_eq!(off.total_energy_nj, on.total_energy_nj);
    }

    #[test]
    fn series_has_one_row_per_window() {
        let r = report(6);
        let s = window_series(&r);
        assert_eq!(s.len(), 6);
        assert_eq!(s.columns.len(), WINDOW_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("window,start[ns],end[ns],"));
        assert_eq!(csv.lines().count(), 7);
        assert_eq!(s.to_jsonl().lines().count(), 6);
    }

    #[test]
    fn publish_mirrors_totals_and_latencies() {
        let r = report(4);
        let reg = Registry::new();
        publish_report(&r, &reg, "serve");
        assert_eq!(reg.counter("serve.completed").get(), r.total_completed);
        assert_eq!(reg.counter("serve.batches").get(), r.batches);
        assert_eq!(reg.gauge("serve.replicas").get(), r.replicas as i64);
        let h = reg.histogram("serve.latency_ns");
        assert_eq!(h.count(), r.total_completed);
        assert_eq!(h.bins(), r.overall_histogram().bins);
    }
}
