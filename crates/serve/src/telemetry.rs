//! Bridges from serving reports to the `autohet-obs` substrate:
//! per-window telemetry as a [`Series`] table, run totals mirrored into
//! a metrics [`Registry`], and the report's window stream evaluated
//! through the deterministic alert engine ([`alert_timeline`]).

use crate::report::{ServingReport, WindowStats};
use crate::shard::{autoscale_rules, AutoscaleSpec, ShardServingReport};
use autohet_obs::alert::{AlertEngine, AlertRule, AlertTimeline, BurnRateRule, ThresholdRule};
use autohet_obs::{Registry, Series};

/// Column schema of [`window_series`] (name, unit), kept in one place so
/// docs and exporters cannot drift apart.
pub const WINDOW_COLUMNS: [(&str, &str); 14] = [
    ("window", ""),
    ("start", "ns"),
    ("end", "ns"),
    ("submitted", "req"),
    ("rejected", "req"),
    ("completed", "req"),
    ("batches", ""),
    ("mean_batch_size", "req"),
    ("batch_occupancy", ""),
    ("slo_attainment", ""),
    ("mean_queue_depth", "req"),
    ("peak_queue_depth", "req"),
    ("downtime", "ns"),
    ("fairness", ""),
];

/// One row per [`WindowStats`], columns per [`WINDOW_COLUMNS`].
fn windows_to_series(name: &str, windows: &[WindowStats]) -> Series {
    let mut s = Series::new(name, &WINDOW_COLUMNS);
    for w in windows {
        s.push(vec![
            w.index as f64,
            w.start_ns as f64,
            w.end_ns as f64,
            w.submitted as f64,
            w.rejected as f64,
            w.completed as f64,
            w.batches as f64,
            w.mean_batch_size,
            w.batch_occupancy,
            w.slo_attainment,
            w.mean_queue_depth,
            w.peak_queue_depth as f64,
            w.downtime_ns as f64,
            w.fairness_index,
        ]);
    }
    s
}

/// The report's per-window telemetry as a time-series table (one row per
/// window, columns per [`WINDOW_COLUMNS`]). Empty when the run was
/// configured without telemetry windows.
pub fn window_series(report: &ServingReport) -> Series {
    windows_to_series("serving_windows", &report.windows)
}

/// Per-window telemetry of a sharded run (one row per epoch), same
/// schema as [`window_series`].
pub fn shard_window_series(report: &ShardServingReport) -> Series {
    windows_to_series("shard_serving_windows", &report.windows)
}

/// Mirror a serving run's totals into `registry` under `prefix`:
/// counters for request accounting and batches, a gauge for replicas,
/// and the merged latency distribution as a `{prefix}.latency_ns`
/// histogram (same log₂ binning on both sides).
pub fn publish_report(report: &ServingReport, registry: &Registry, prefix: &str) {
    let c = |name: &str, v: u64| registry.counter(&format!("{prefix}.{name}")).add(v);
    c("completed", report.total_completed);
    c("rejected", report.total_rejected);
    c("failed", report.total_failed);
    c("retried", report.total_retried);
    c("batches", report.batches);
    registry
        .gauge(&format!("{prefix}.replicas"))
        .set(report.replicas as i64);
    registry
        .histogram(&format!("{prefix}.latency_ns"))
        .merge_bins(&report.overall_histogram().bins);
}

/// Alert rules evaluated over a serving run's per-window telemetry (see
/// [`alert_timeline`]). The configuration lives outside [`ServeConfig`]
/// (which stays `Copy + Eq`): alerting is a post-hoc, read-only pass over
/// the report, so it cannot perturb the simulation by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeAlertConfig {
    /// SLO attainment target per window; the burn-rate rule watches the
    /// error fraction `1 − slo_attainment` against budget `1 − target`.
    pub slo_target: f64,
    /// Burn-rate multiple that fires the SLO rule.
    pub burn_factor: f64,
    /// Fast burn window [telemetry windows].
    pub short_windows: usize,
    /// Slow burn window [telemetry windows].
    pub long_windows: usize,
    /// Mean aggregate queue depth above which the saturation rule trips.
    pub queue_depth_limit: f64,
    /// Clean windows before a firing rule resolves.
    pub clear_windows: usize,
}

impl Default for ServeAlertConfig {
    fn default() -> Self {
        ServeAlertConfig {
            slo_target: 0.95,
            burn_factor: 2.0,
            short_windows: 1,
            long_windows: 4,
            queue_depth_limit: 32.0,
            clear_windows: 2,
        }
    }
}

/// Names of the rules [`alert_timeline`] installs.
pub const SLO_BURN_RULE: &str = "serve.slo_burn";
/// See [`SLO_BURN_RULE`].
pub const QUEUE_SATURATION_RULE: &str = "serve.queue_saturation";
/// See [`SLO_BURN_RULE`].
pub const DOWNTIME_RULE: &str = "serve.downtime";

/// Evaluate a serving report's telemetry windows through the
/// deterministic alert engine and return the resulting timeline.
///
/// Each [`WindowStats`](crate::report::WindowStats) is observed at its
/// `end_ns` with three signals — the window's SLO error fraction, its
/// time-weighted mean aggregate queue depth, and its replica downtime —
/// and every recorded [`HealthEvent`](crate::sim::HealthEvent) is placed
/// on the same timeline as an annotation (`health.trip`, `health.recal`,
/// …, carrying the replica id as the value). Because the evaluation runs
/// over the finished report on simulated time only, the timeline is
/// bit-identical across runs and across the single-threaded and parallel
/// drivers, and producing it cannot change the report.
pub fn alert_timeline(report: &ServingReport, cfg: &ServeAlertConfig) -> AlertTimeline {
    let mut engine = AlertEngine::new()
        .with_rule(AlertRule::BurnRate(
            BurnRateRule::new(SLO_BURN_RULE, "err_frac", cfg.slo_target, cfg.burn_factor)
                .windows(cfg.short_windows, cfg.long_windows)
                .clear_samples(cfg.clear_windows),
        ))
        .with_rule(AlertRule::Threshold(
            ThresholdRule::above(
                QUEUE_SATURATION_RULE,
                "mean_queue_depth",
                cfg.queue_depth_limit,
            )
            .clear_samples(cfg.clear_windows),
        ))
        .with_rule(AlertRule::Threshold(
            ThresholdRule::above(DOWNTIME_RULE, "downtime_ns", 0.0)
                .clear_samples(cfg.clear_windows),
        ));
    for w in &report.windows {
        engine.observe(
            w.end_ns,
            &[
                ("err_frac", 1.0 - w.slo_attainment),
                ("mean_queue_depth", w.mean_queue_depth),
                ("downtime_ns", w.downtime_ns as f64),
            ],
        );
    }
    for e in &report.health_events {
        engine.annotate(
            e.t_ns,
            &format!("health.{}", e.kind.label()),
            e.replica as f64,
        );
    }
    engine.finish()
}

/// Alert timeline of a sharded run: the [`alert_timeline`] SLO-burn and
/// queue-saturation rules over the epoch windows, plus — when the run
/// was autoscaled — the *exact* autoscaler rules replayed over the
/// recorded [`EpochSignal`]s (the runtime recorded its own inputs, so
/// the replay's pending → firing → resolved transitions match what the
/// autoscaler acted on, barrier for barrier). Scaling, stealing, and
/// swap events land on the same timeline as annotations (`scale.up`,
/// `scale.down`, `steal`, `swap`).
///
/// [`EpochSignal`]: crate::shard::EpochSignal
pub fn shard_alert_timeline(
    report: &ShardServingReport,
    cfg: &ServeAlertConfig,
    autoscale: Option<&AutoscaleSpec>,
) -> AlertTimeline {
    let mut engine = AlertEngine::new()
        .with_rule(AlertRule::BurnRate(
            BurnRateRule::new(SLO_BURN_RULE, "err_frac", cfg.slo_target, cfg.burn_factor)
                .windows(cfg.short_windows, cfg.long_windows)
                .clear_samples(cfg.clear_windows),
        ))
        .with_rule(AlertRule::Threshold(
            ThresholdRule::above(
                QUEUE_SATURATION_RULE,
                "mean_queue_depth",
                cfg.queue_depth_limit,
            )
            .clear_samples(cfg.clear_windows),
        ));
    if let Some(spec) = autoscale {
        for rule in autoscale_rules(spec) {
            engine.add_rule(rule);
        }
    }
    for (w, sig) in report.windows.iter().zip(&report.epoch_signals) {
        engine.observe(
            w.end_ns,
            &[
                ("err_frac", 1.0 - w.slo_attainment),
                ("mean_queue_depth", w.mean_queue_depth),
                ("epoch_queue_depth", sig.mean_queue_depth),
                ("epoch_slo", sig.slo_attainment),
            ],
        );
    }
    for e in &report.scale_events {
        let label = if e.up { "scale.up" } else { "scale.down" };
        engine.annotate(e.t_ns, label, e.active_after as f64);
    }
    for e in &report.steal_events {
        engine.annotate(e.t_ns, "steal", e.tenant as f64);
    }
    for e in &report.swap_events {
        engine.annotate(e.t_ns, "swap", e.tenant as f64);
    }
    engine.finish()
}

/// Mirror a sharded run's totals into `registry` under `prefix`:
/// request/batch counters, steal/scale/swap event counters, replica
/// gauges, and the merged latency histogram.
pub fn publish_shard_report(report: &ShardServingReport, registry: &Registry, prefix: &str) {
    let c = |name: &str, v: u64| registry.counter(&format!("{prefix}.{name}")).add(v);
    c("submitted", report.total_submitted);
    c("completed", report.total_completed);
    c("rejected", report.total_rejected);
    c("batches", report.batches);
    c("steals", report.steal_events.len() as u64);
    c("swaps", report.swap_events.len() as u64);
    c(
        "scale_ups",
        report.scale_events.iter().filter(|e| e.up).count() as u64,
    );
    c(
        "scale_downs",
        report.scale_events.iter().filter(|e| !e.up).count() as u64,
    );
    registry
        .gauge(&format!("{prefix}.shards"))
        .set(report.shards as i64);
    registry
        .gauge(&format!("{prefix}.replicas"))
        .set(report.replicas_final as i64);
    let mut hist = crate::report::LatencyHistogram::new();
    for t in &report.tenants {
        hist.merge(&t.histogram);
    }
    registry
        .histogram(&format!("{prefix}.latency_ns"))
        .merge_bins(&hist.bins);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::sim::{run_serving, ServeConfig};
    use crate::workload::{TenantSpec, Workload};
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn report(windows: usize) -> ServingReport {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        let d = Deployment::compile("lenet", &m, &strategy, &AccelConfig::default());
        let rate = 0.7 * d.max_rate_rps();
        let slo = (8.0 * d.pipeline.fill_ns) as u64;
        let tenants = vec![TenantSpec::new("lenet", d, rate, slo)];
        let wl = Workload {
            seed: 7,
            horizon_ns: (1_000.0 / rate * 1e9) as u64,
        };
        let cfg = ServeConfig {
            telemetry_windows: windows,
            ..ServeConfig::default()
        };
        run_serving(&tenants, &wl, &cfg)
    }

    #[test]
    fn windows_partition_the_run() {
        let r = report(8);
        assert_eq!(r.windows.len(), 8);
        // Window accounting conserves the run totals.
        let submitted: u64 = r.windows.iter().map(|w| w.submitted).sum();
        let rejected: u64 = r.windows.iter().map(|w| w.rejected).sum();
        let completed: u64 = r.windows.iter().map(|w| w.completed).sum();
        let batches: u64 = r.windows.iter().map(|w| w.batches).sum();
        assert_eq!(submitted, r.tenants[0].submitted);
        assert_eq!(rejected, r.total_rejected);
        assert_eq!(completed, r.total_completed);
        assert_eq!(batches, r.batches);
        // Window histograms merge to the overall distribution.
        let mut merged = crate::report::LatencyHistogram::new();
        for w in &r.windows {
            merged.merge(&w.histogram);
        }
        assert_eq!(merged, r.overall_histogram());
        // Windows tile [0, horizon) contiguously.
        for (i, w) in r.windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert_eq!(w.end_ns - w.start_ns, r.windows[0].end_ns);
            if i > 0 {
                assert_eq!(w.start_ns, r.windows[i - 1].end_ns);
            }
            assert!(w.slo_attainment >= 0.0 && w.slo_attainment <= 1.0);
            assert!(w.batch_occupancy >= 0.0 && w.batch_occupancy <= 1.0);
            assert!(w.mean_queue_depth >= 0.0);
        }
    }

    #[test]
    fn window_telemetry_does_not_perturb_the_rest_of_the_report() {
        let off = report(0);
        let on = report(8);
        assert!(off.windows.is_empty());
        assert_eq!(off.tenants, on.tenants);
        assert_eq!(off.batches, on.batches);
        assert_eq!(off.makespan_ns, on.makespan_ns);
        assert_eq!(off.total_energy_nj, on.total_energy_nj);
    }

    #[test]
    fn series_has_one_row_per_window() {
        let r = report(6);
        let s = window_series(&r);
        assert_eq!(s.len(), 6);
        assert_eq!(s.columns.len(), WINDOW_COLUMNS.len());
        let csv = s.to_csv();
        assert!(csv.starts_with("window,start[ns],end[ns],"));
        assert_eq!(csv.lines().count(), 7);
        assert_eq!(s.to_jsonl().lines().count(), 6);
    }

    #[test]
    fn publish_mirrors_totals_and_latencies() {
        let r = report(4);
        let reg = Registry::new();
        publish_report(&r, &reg, "serve");
        assert_eq!(reg.counter("serve.completed").get(), r.total_completed);
        assert_eq!(reg.counter("serve.batches").get(), r.batches);
        assert_eq!(reg.gauge("serve.replicas").get(), r.replicas as i64);
        let h = reg.histogram("serve.latency_ns");
        assert_eq!(h.count(), r.total_completed);
        assert_eq!(h.bins(), r.overall_histogram().bins);
    }

    /// A report skeleton with hand-written windows, for driving the alert
    /// rules through exact signal sequences.
    fn synthetic_report(windows: Vec<crate::report::WindowStats>) -> ServingReport {
        ServingReport {
            seed: 0,
            horizon_ns: windows.len() as u64 * 1_000,
            makespan_ns: windows.len() as u64 * 1_000,
            replicas: 1,
            batches: 0,
            mean_batch_size: 0.0,
            total_completed: 0,
            total_rejected: 0,
            total_failed: 0,
            total_retried: 0,
            total_errored: 0,
            replica_downtime_ns: vec![0],
            replica_trips: vec![0],
            replica_recals: vec![0],
            replica_remaps: vec![0],
            replica_recovery_ns: vec![0],
            total_energy_nj: 0.0,
            aggregate_throughput_rps: 0.0,
            fairness_index: 1.0,
            tenants: Vec::new(),
            windows,
            health_events: Vec::new(),
        }
    }

    fn win(index: usize, slo_attainment: f64, depth: f64) -> crate::report::WindowStats {
        crate::report::WindowStats {
            index,
            start_ns: index as u64 * 1_000,
            end_ns: (index as u64 + 1) * 1_000,
            submitted: 10,
            rejected: 0,
            completed: 10,
            batches: 2,
            mean_batch_size: 5.0,
            batch_occupancy: 0.6,
            slo_attainment,
            mean_queue_depth: depth,
            peak_queue_depth: depth.ceil() as u64,
            downtime_ns: 0,
            fairness_index: 1.0,
            histogram: crate::report::LatencyHistogram::new(),
        }
    }

    #[test]
    fn slo_burn_fires_under_sustained_violation_and_resolves() {
        // Healthy, then four windows at 60% attainment (err 0.4, budget
        // 0.05 → burn 8 ≥ 2), then healthy again.
        let mut windows = vec![win(0, 1.0, 1.0), win(1, 1.0, 1.0)];
        for i in 2..6 {
            windows.push(win(i, 0.6, 1.0));
        }
        for i in 6..10 {
            windows.push(win(i, 1.0, 1.0));
        }
        let t = alert_timeline(&synthetic_report(windows), &ServeAlertConfig::default());
        let slo = t.for_rule(SLO_BURN_RULE);
        let kinds: Vec<&str> = slo.iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, ["firing", "resolved"]);
        // Fired at the end of the first bad window, resolved two clean
        // windows after the violation stopped.
        assert_eq!(slo[0].t_ns, 3_000);
        assert!(slo[1].t_ns > slo[0].t_ns);
        // Queue depth stayed calm: no saturation events.
        assert!(t.for_rule(QUEUE_SATURATION_RULE).is_empty());
    }

    #[test]
    fn queue_saturation_rule_watches_mean_depth() {
        let windows = vec![
            win(0, 1.0, 2.0),
            win(1, 1.0, 50.0),
            win(2, 1.0, 40.0),
            win(3, 1.0, 1.0),
            win(4, 1.0, 1.0),
        ];
        let t = alert_timeline(&synthetic_report(windows), &ServeAlertConfig::default());
        let sat = t.for_rule(QUEUE_SATURATION_RULE);
        let kinds: Vec<&str> = sat.iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, ["firing", "resolved"]);
        assert_eq!(sat[0].t_ns, 2_000);
        assert_eq!(sat[0].value, 50.0);
        assert_eq!(sat[1].t_ns, 5_000);
    }

    #[test]
    fn health_events_become_annotations_on_the_timeline() {
        use crate::sim::{HealthEvent, HealthEventKind};
        let mut r = synthetic_report(vec![win(0, 1.0, 1.0)]);
        r.health_events = vec![
            HealthEvent {
                t_ns: 400,
                replica: 2,
                kind: HealthEventKind::Trip,
            },
            HealthEvent {
                t_ns: 700,
                replica: 2,
                kind: HealthEventKind::Recal,
            },
        ];
        let t = alert_timeline(&r, &ServeAlertConfig::default());
        let trips = t.for_rule("health.trip");
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].t_ns, 400);
        assert_eq!(trips[0].value, 2.0);
        assert_eq!(t.for_rule("health.recal").len(), 1);
        // Annotations sort into the timeline before the window sample.
        assert_eq!(t.events[0].t_ns, 400);
    }

    #[test]
    fn real_run_alert_timeline_is_deterministic_and_records_recovery() {
        use crate::sim::HealthSpec;
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        let d = Deployment::compile("lenet", &m, &strategy, &AccelConfig::default());
        let rate = 0.7 * d.max_rate_rps();
        let slo = (8.0 * d.pipeline.fill_ns) as u64;
        let tenants = vec![TenantSpec::new("lenet", d, rate, slo)];
        let wl = Workload {
            seed: 7,
            horizon_ns: (2_000.0 / rate * 1e9) as u64,
        };
        let cfg = ServeConfig {
            replicas: 2,
            telemetry_windows: 8,
            health: Some(HealthSpec {
                err_ppm_per_ms: 30_000,
                ..HealthSpec::default()
            }),
            ..ServeConfig::default()
        };
        let acfg = ServeAlertConfig::default();
        let single = run_serving(&tenants, &wl, &cfg);
        assert!(
            !single.health_events.is_empty(),
            "drift config too tame to produce health events"
        );
        let t1 = alert_timeline(&single, &acfg);
        let t2 = alert_timeline(&run_serving(&tenants, &wl, &cfg), &acfg);
        assert_eq!(t1, t2, "identical runs must yield identical timelines");
        let tp = alert_timeline(
            &crate::parallel::run_serving_parallel(&tenants, &wl, &cfg),
            &acfg,
        );
        assert_eq!(t1, tp, "drivers must agree on the alert timeline");
        assert!(!t1.for_rule("health.trip").is_empty());
        // Timestamps are sorted.
        assert!(t1.events.windows(2).all(|p| p[0].t_ns <= p[1].t_ns));
    }
}
