//! # autohet-serve — deterministic multi-tenant inference serving
//!
//! The search crates answer *"what accelerator should we build?"*; this
//! crate answers *"how does that accelerator behave as a service?"*. It
//! simulates an inference-serving deployment — per-tenant request queues,
//! batching, admission control, replicated accelerator instances — on top
//! of the analytical cost model: a [`Deployment`] compiles a
//! (model, strategy, [`AccelConfig`](autohet_accel::AccelConfig)) triple
//! into batch service times (via
//! [`PipelineReport`](autohet_accel::PipelineReport)) and per-request
//! energy (via [`EvalReport`](autohet_accel::EvalReport)).
//!
//! ## Model
//!
//! - **Time** is integer nanoseconds (`u64`) of virtual time; nothing
//!   depends on wall clocks, so every run is exactly reproducible.
//! - **Arrivals** are open-loop Poisson processes, one seeded
//!   [`SmallRng`](rand::rngs::SmallRng) stream per tenant, optionally
//!   modulated by a periodic [`BurstSpec`].
//! - **Queues** are per-tenant FIFO. An arrival that finds its tenant's
//!   queue at the configured depth bound is *shed* (counted as rejected).
//! - **Batching**: a tenant's queue becomes dispatchable when it holds
//!   `max_batch` requests or its oldest request has waited
//!   `batch_window_ns`. A dispatch drains up to `max_batch` requests into
//!   one batch; batch latency is the pipeline's
//!   `fill + (n − 1) × bottleneck` law.
//! - **Replicas** are identical accelerator instances. Each batch goes to
//!   the earliest-free replica (ties: lowest replica id); among
//!   dispatchable tenants the oldest head request wins (ties: lowest
//!   tenant id).
//!
//! - **Failures** (optional): replica instances fail and recover on a
//!   seeded alternating renewal schedule ([`FailureSpec`] →
//!   [`FailurePlan`]). A down replica is skipped at dispatch time
//!   (failover to survivors); a batch interrupted mid-service is killed
//!   and its requests retried — back at the queue front, keeping FIFO by
//!   arrival — unless their retry deadline has passed, in which case they
//!   count as failed. Completed requests that survived a kill are
//!   reported per tenant as `degraded_completed`.
//! - **Drift & recovery** (optional): with a [`HealthSpec`] configured,
//!   each replica accumulates conductance drift — per-request result
//!   corruption whose probability grows with the time since the last
//!   recalibration. An online monitor EWMAs each replica's batch error
//!   fraction and trips a circuit breaker, taking the replica through
//!   bounded recalibration retries (exponential backoff) and an optional
//!   remap escalation while load sheds to the healthy replicas. Errored
//!   completions are reported per tenant and count as SLO violations.
//!
//! ## Determinism
//!
//! The event loop is a recurrence: "the replica with the minimum free
//! time takes the next dispatchable batch". [`run_serving`] evaluates the
//! recurrence sequentially; [`run_serving_parallel`] runs one
//! `crossbeam` worker per replica against shared state guarded by a
//! `parking_lot` mutex, where a worker proceeds only while its replica
//! *is* the minimum — so both modes execute the identical batch sequence
//! and produce bit-identical [`ServingReport`]s (asserted by tests).
//!
//! ## Simplifications
//!
//! Host-side overheads (RPC, pre/post-processing) are out of scope; a
//! request's energy is its deployment's single-inference energy; weights
//! for all tenants are assumed resident (ReRAM weight programming is a
//! deploy-time cost, §4.5 of the paper).
//!
//! ## The sharded runtime
//!
//! [`run_sharded`] scales the same simulation model to hundreds of
//! tenants and millions of requests: tenants partition across
//! shard-local schedulers with their own queues, clocks, and replica
//! pools; scheduling within a shard is deficit round-robin over
//! per-tenant weights ([`TenantSpec::weight`]) instead of global FIFO;
//! and all cross-shard coupling — work stealing, telemetry-driven
//! replica autoscaling, online strategy swap on workload-mix drift —
//! happens at deterministic epoch barriers. The heap-mode scheduler,
//! the linear-scan reference ([`run_sharded_reference`]), and the
//! epoch-parallel driver ([`run_sharded_threaded`]) are bit-identical;
//! see [`shard`] for the architecture and determinism argument.

pub mod deploy;
pub mod drr;
pub mod failure;
pub mod parallel;
pub mod ready;
pub mod report;
pub mod shard;
pub mod sim;
pub mod telemetry;
pub mod workload;

pub use deploy::Deployment;
pub use drr::{DrrAccess, DrrRing};
pub use failure::{FailurePlan, FailureSpec, Outage};
pub use parallel::{run_serving_parallel, run_sharded_threaded};
pub use ready::{ReplicaPool, StampedHeap};
pub use report::{jain_index, LatencyHistogram, ServingReport, TenantStats, WindowStats};
pub use shard::{
    run_sharded, run_sharded_reference, AutoscaleSpec, EpochSignal, ScaleEvent, SelectMode,
    ShardConfig, ShardServingReport, ShardStats, ShardTenantStats, StealEvent, StealSpec,
    SwapEvent, SwapSpec,
};
pub use sim::{run_serving, HealthEvent, HealthEventKind, HealthSpec, ServeConfig};
pub use telemetry::{
    alert_timeline, publish_report, publish_shard_report, shard_alert_timeline,
    shard_window_series, window_series, ServeAlertConfig,
};
pub use workload::{
    merge_arrivals, tenant_arrivals, Arrival, BurstSpec, RampSpec, TenantSpec, Workload,
};
