//! Heap-backed ready structures for the dispatch hot path.
//!
//! The original scheduler re-scanned every tenant and every replica on
//! each event (`best_candidate`, `argmin_replica` — O(tenants ×
//! replicas) per dispatch). The structures here replace those scans with
//! lazy-deletion binary heaps at O(log n) per update, *without changing
//! a single scheduling decision*: each heap pops exactly the minimum the
//! linear scan would have found, with the identical tie-break (lowest
//! id wins on equal keys — `BinaryHeap` over `Reverse<(key, id)>` orders
//! ties by id ascending for free).
//!
//! Lazy deletion means stale entries stay in the heap until they
//! surface: every pop validates the entry against the current state and
//! silently discards outdated ones. The heaps therefore hold at most one
//! *valid* entry per element plus a bounded number of stale ones (each
//! update pushes one entry, so total pushes bound total pops).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Replica free-list: answers "which replica frees earliest?" in
/// O(log R) per update instead of an O(R) scan, with the scan's exact
/// tie-break (equal free times → lowest replica id).
///
/// Replicas can be added (autoscale up) and retired (autoscale down) at
/// any time; retired replicas are removed lazily as their entries
/// surface.
#[derive(Debug, Clone)]
pub struct ReplicaPool {
    /// Current free time per replica id (dense, never shrinks).
    free: Vec<u64>,
    /// Retired replicas no longer participate in dispatch.
    retired: Vec<bool>,
    /// Lazy min-heap of `(free_ns, id)` candidates.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    active: usize,
}

impl ReplicaPool {
    /// `n` replicas, all free at t = 0.
    pub fn new(n: usize) -> Self {
        ReplicaPool {
            free: vec![0; n],
            retired: vec![false; n],
            heap: (0..n).map(|r| Reverse((0, r))).collect(),
            active: n,
        }
    }

    /// Replicas ever created (including retired ones).
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Replicas currently dispatchable.
    pub fn active(&self) -> usize {
        self.active
    }

    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Current free time of replica `r` (meaningful for retired replicas
    /// too: the instant their last batch drains).
    pub fn free_of(&self, r: usize) -> u64 {
        self.free[r]
    }

    /// Whether replica `r` has been retired.
    pub fn is_retired(&self, r: usize) -> bool {
        self.retired[r]
    }

    /// The earliest-free active replica `(free_ns, id)` without removing
    /// it; ties break to the lowest id. Discards stale heap entries.
    pub fn peek_min(&mut self) -> Option<(u64, usize)> {
        while let Some(&Reverse((t, r))) = self.heap.peek() {
            if !self.retired[r] && self.free[r] == t {
                return Some((t, r));
            }
            self.heap.pop();
        }
        None
    }

    /// Linear-scan reference of [`peek_min`](Self::peek_min): min over
    /// `(free, id)` of the active replicas. The scan-mode scheduler uses
    /// this so the reference driver exercises the original O(R) cost.
    pub fn scan_min(&self) -> Option<(u64, usize)> {
        (0..self.free.len())
            .filter(|&r| !self.retired[r])
            .map(|r| (self.free[r], r))
            .min()
    }

    /// Publish a new free time for replica `r` (after dispatching to it
    /// or pausing it). Free times may move in either direction; the old
    /// heap entry goes stale and is discarded lazily.
    pub fn set_free(&mut self, r: usize, t: u64) {
        self.free[r] = t;
        if !self.retired[r] {
            self.heap.push(Reverse((t, r)));
        }
    }

    /// Add a fresh replica free at `t`; returns its id (dense,
    /// monotonically increasing).
    pub fn add(&mut self, t: u64) -> usize {
        let r = self.free.len();
        self.free.push(t);
        self.retired.push(false);
        self.heap.push(Reverse((t, r)));
        self.active += 1;
        r
    }

    /// Retire replica `r`: it finishes any in-flight batch (its free
    /// time stays meaningful) but takes no further dispatches.
    pub fn retire(&mut self, r: usize) {
        if !self.retired[r] {
            self.retired[r] = true;
            self.active -= 1;
        }
    }

    /// Ids of the active replicas, ascending.
    pub fn active_ids(&self) -> Vec<usize> {
        (0..self.free.len()).filter(|&r| !self.retired[r]).collect()
    }
}

/// Lazy min-heap over `(key, id)` pairs whose validity is versioned by a
/// per-id stamp: bump the stamp whenever an id's key changes (or the id
/// leaves this structure's domain) and push a fresh entry if it still
/// has one. Pops discard entries whose stamp is no longer current.
///
/// Used for the tenant ready-heap (key = earliest dispatchable instant)
/// and sized by external ids, so shards can migrate tenants between
/// heaps by bumping the stamp on both sides.
#[derive(Debug, Clone, Default)]
pub struct StampedHeap {
    heap: BinaryHeap<Reverse<(u64, usize, u64)>>,
}

impl StampedHeap {
    pub fn new() -> Self {
        StampedHeap {
            heap: BinaryHeap::new(),
        }
    }

    /// Insert `(key, id)` valid while `stamp` is the id's current stamp.
    pub fn push(&mut self, key: u64, id: usize, stamp: u64) {
        self.heap.push(Reverse((key, id, stamp)));
    }

    /// The minimum `(key, id)` whose entry is still current, without
    /// removing it. `current` returns the id's present stamp (stale
    /// entries carry an older stamp and are discarded).
    pub fn peek_valid(&mut self, mut current: impl FnMut(usize) -> u64) -> Option<(u64, usize)> {
        while let Some(&Reverse((k, id, stamp))) = self.heap.peek() {
            if current(id) == stamp {
                return Some((k, id));
            }
            self.heap.pop();
        }
        None
    }

    /// Entries currently stored (valid + stale) — used by tests to bound
    /// the lazy-deletion overhead.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_ties_break_to_lowest_id_like_the_scan() {
        let mut p = ReplicaPool::new(4);
        // All free at 0: the scan picks replica 0, and so must the heap.
        assert_eq!(p.peek_min(), Some((0, 0)));
        assert_eq!(p.peek_min(), p.scan_min());
        // Tie at a later instant between replicas 2 and 1 (pushed in
        // that order): lowest id still wins.
        p.set_free(0, 100);
        p.set_free(3, 90);
        p.set_free(2, 50);
        p.set_free(1, 50);
        assert_eq!(p.peek_min(), Some((50, 1)));
        assert_eq!(p.peek_min(), p.scan_min());
        // Breaking the tie flips to the remaining minimum.
        p.set_free(1, 51);
        assert_eq!(p.peek_min(), Some((50, 2)));
        assert_eq!(p.peek_min(), p.scan_min());
    }

    #[test]
    fn pool_matches_scan_under_random_updates() {
        // Deterministic LCG-driven fuzz: after every update the heap and
        // the scan must agree exactly (value and id).
        let mut p = ReplicaPool::new(5);
        let mut x = 0x2545F491u64;
        for step in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (x >> 33) as usize % p.len();
            if !p.is_retired(r) {
                p.set_free(r, (x >> 7) % 10_000);
            }
            if step % 97 == 0 && p.active() > 1 {
                p.retire(r);
            }
            if step % 193 == 0 {
                p.add((x >> 11) % 10_000);
            }
            assert_eq!(p.peek_min(), p.scan_min(), "step {step}");
        }
    }

    #[test]
    fn retired_replicas_never_win() {
        let mut p = ReplicaPool::new(3);
        p.set_free(0, 10);
        p.set_free(1, 20);
        p.set_free(2, 30);
        p.retire(0);
        assert_eq!(p.peek_min(), Some((20, 1)));
        assert_eq!(p.active(), 2);
        p.retire(1);
        p.retire(2);
        assert_eq!(p.peek_min(), None);
        assert_eq!(p.scan_min(), None);
    }

    #[test]
    fn added_replicas_join_dispatch() {
        let mut p = ReplicaPool::new(1);
        p.set_free(0, 1000);
        let r = p.add(500);
        assert_eq!(r, 1);
        assert_eq!(p.peek_min(), Some((500, 1)));
        // A new replica tying an old one loses to the lower id.
        let r2 = p.add(500);
        assert_eq!(r2, 2);
        assert_eq!(p.peek_min(), Some((500, 1)));
        assert_eq!(p.peek_min(), p.scan_min());
    }

    #[test]
    fn stamped_heap_discards_stale_entries() {
        let mut h = StampedHeap::new();
        let mut stamps = [0u64; 3];
        h.push(100, 0, stamps[0]);
        h.push(50, 1, stamps[1]);
        h.push(75, 2, stamps[2]);
        assert_eq!(h.peek_valid(|id| stamps[id]), Some((50, 1)));
        // Id 1's key changes: bump its stamp, push the new entry.
        stamps[1] += 1;
        h.push(120, 1, stamps[1]);
        assert_eq!(h.peek_valid(|id| stamps[id]), Some((75, 2)));
        // Invalidate everything: empty.
        stamps = [9, 9, 9];
        assert_eq!(h.peek_valid(|id| stamps[id]), None);
        assert!(h.is_empty());
    }

    #[test]
    fn stamped_heap_ties_break_to_lowest_id() {
        let mut h = StampedHeap::new();
        h.push(10, 2, 0);
        h.push(10, 0, 0);
        h.push(10, 1, 0);
        assert_eq!(h.peek_valid(|_| 0), Some((10, 0)));
    }
}
