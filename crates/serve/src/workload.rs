//! Seeded open-loop workload generation.
//!
//! Each tenant gets an independent Poisson arrival process: exponential
//! inter-arrival gaps drawn from a per-tenant `SmallRng` whose seed is a
//! pure function of the workload seed and the tenant index. Optional
//! periodic bursts scale the instantaneous rate (piecewise-constant
//! thinning-free approximation: the rate in force at the previous arrival
//! governs the next gap). All timestamps are integer nanoseconds.

use crate::deploy::Deployment;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Periodic overload phases layered onto a tenant's base rate: for the
/// first `burst_ns` of every `period_ns`, the rate is multiplied by
/// `factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// Burst cycle length [ns].
    pub period_ns: u64,
    /// Burst duration at the start of each cycle [ns] (≤ `period_ns`).
    pub burst_ns: u64,
    /// Rate multiplier during the burst (> 0).
    pub factor: f64,
}

/// A one-way linear rate drift: the tenant's rate factor ramps from 1.0
/// at `start_ns` to `to_factor` at `end_ns` and stays there. Composed
/// multiplicatively with any [`BurstSpec`]. This is the workload-mix
/// drift that triggers online strategy swap in the sharded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampSpec {
    /// Drift onset [ns].
    pub start_ns: u64,
    /// Instant the ramp completes [ns] (> `start_ns`).
    pub end_ns: u64,
    /// Final rate multiplier (> 0).
    pub to_factor: f64,
}

impl RampSpec {
    /// The rate multiplier in force at instant `t`.
    pub fn factor_at(&self, t: u64) -> f64 {
        if t < self.start_ns {
            1.0
        } else if t >= self.end_ns {
            self.to_factor
        } else {
            let frac = (t - self.start_ns) as f64 / (self.end_ns - self.start_ns) as f64;
            1.0 + (self.to_factor - 1.0) * frac
        }
    }
}

/// One tenant of the serving deployment: a compiled model plus its
/// traffic contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant label used in reports.
    pub name: String,
    /// The compiled model this tenant's requests run on.
    pub deployment: Deployment,
    /// Mean request rate [requests/s].
    pub rate_rps: f64,
    /// Latency objective: a request meets its SLO iff
    /// `completion − arrival ≤ slo_ns`.
    pub slo_ns: u64,
    /// Optional periodic burst pattern.
    pub burst: Option<BurstSpec>,
    /// Fair-share weight for deficit-round-robin scheduling (≥ 1). Under
    /// contention a tenant's attained service is proportional to its
    /// weight; the FIFO runtime ignores it.
    pub weight: u64,
    /// Optional linear rate drift (workload-mix change over the run).
    pub ramp: Option<RampSpec>,
    /// Optional alternative compiled strategy the sharded runtime may
    /// swap this tenant onto mid-run when its traffic share drifts past
    /// the configured threshold (ARAS-style online remapping).
    pub alt_deployment: Option<Deployment>,
}

impl TenantSpec {
    /// A steady (burst-free) tenant with weight 1.
    pub fn new(name: &str, deployment: Deployment, rate_rps: f64, slo_ns: u64) -> Self {
        assert!(rate_rps >= 0.0, "negative rate");
        assert!(slo_ns > 0, "zero SLO");
        TenantSpec {
            name: name.to_string(),
            deployment,
            rate_rps,
            slo_ns,
            burst: None,
            weight: 1,
            ramp: None,
            alt_deployment: None,
        }
    }

    /// Attach a periodic burst pattern.
    pub fn with_burst(mut self, burst: BurstSpec) -> Self {
        assert!(burst.period_ns > 0 && burst.burst_ns <= burst.period_ns);
        assert!(burst.factor > 0.0);
        self.burst = Some(burst);
        self
    }

    /// Set the DRR fair-share weight (≥ 1).
    pub fn with_weight(mut self, weight: u64) -> Self {
        assert!(weight >= 1, "zero weight");
        self.weight = weight;
        self
    }

    /// Attach a linear rate ramp (workload-mix drift).
    pub fn with_ramp(mut self, ramp: RampSpec) -> Self {
        assert!(ramp.end_ns > ramp.start_ns, "empty ramp");
        assert!(ramp.to_factor > 0.0, "non-positive ramp factor");
        self.ramp = Some(ramp);
        self
    }

    /// Attach an alternative strategy for online swap.
    pub fn with_alt(mut self, alt: Deployment) -> Self {
        self.alt_deployment = Some(alt);
        self
    }
}

/// Global workload parameters shared by every tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Master seed; tenant streams are derived from it deterministically.
    pub seed: u64,
    /// Arrivals are generated on `[0, horizon_ns)`.
    pub horizon_ns: u64,
}

/// One request arrival in the merged stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Arrival {
    /// Arrival timestamp [ns].
    pub time_ns: u64,
    /// Index into the tenant slice.
    pub tenant: usize,
}

/// Splitmix-style stream derivation so tenant streams are independent
/// even for adjacent seeds/indices.
fn tenant_seed(master: u64, tenant: usize) -> u64 {
    master
        .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left(17)
        ^ 0xD1B5_4A32_D192_ED03
}

/// Generate the sorted arrival times for one tenant on `[0, horizon)`.
pub fn tenant_arrivals(tenant: usize, spec: &TenantSpec, wl: &Workload) -> Vec<u64> {
    let mut out = Vec::new();
    if spec.rate_rps <= 0.0 || wl.horizon_ns == 0 {
        return out;
    }
    let mut rng = SmallRng::seed_from_u64(tenant_seed(wl.seed, tenant));
    let base_per_ns = spec.rate_rps * 1e-9;
    let mut t = 0.0f64;
    loop {
        let factor = match spec.burst {
            Some(b) if (t as u64) % b.period_ns < b.burst_ns => b.factor,
            _ => 1.0,
        };
        // Ramp-free tenants keep their exact historical streams (the
        // `None` arm leaves `factor` untouched, bit for bit).
        let factor = match spec.ramp {
            Some(r) => factor * r.factor_at(t as u64),
            None => factor,
        };
        let u: f64 = rng.gen();
        // u ∈ [0, 1) ⇒ 1 − u ∈ (0, 1] ⇒ gap finite and ≥ 0.
        let gap = -(1.0 - u).ln() / (base_per_ns * factor);
        t += gap;
        if t >= wl.horizon_ns as f64 {
            return out;
        }
        out.push(t as u64);
    }
}

/// Merge every tenant's arrivals into one stream ordered by
/// (time, tenant index).
pub fn merge_arrivals(tenants: &[TenantSpec], wl: &Workload) -> Vec<Arrival> {
    let mut all: Vec<Arrival> = tenants
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| {
            tenant_arrivals(i, spec, wl)
                .into_iter()
                .map(move |time_ns| Arrival { time_ns, tenant: i })
        })
        .collect();
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn tenant(rate_rps: f64) -> TenantSpec {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        let d = Deployment::compile("lenet", &m, &strategy, &AccelConfig::default());
        TenantSpec::new("t", d, rate_rps, 1_000_000_000)
    }

    #[test]
    fn arrivals_are_sorted_inside_horizon_and_deterministic() {
        let wl = Workload {
            seed: 7,
            horizon_ns: 1_000_000_000,
        };
        let spec = tenant(5_000.0);
        let a = tenant_arrivals(0, &spec, &wl);
        let b = tenant_arrivals(0, &spec, &wl);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t < wl.horizon_ns));
        let other = tenant_arrivals(0, &spec, &Workload { seed: 8, ..wl });
        assert_ne!(a, other);
    }

    #[test]
    fn mean_rate_is_close_to_requested() {
        let wl = Workload {
            seed: 3,
            horizon_ns: 2_000_000_000,
        };
        let spec = tenant(10_000.0);
        let n = tenant_arrivals(0, &spec, &wl).len() as f64;
        let expected = 10_000.0 * wl.horizon_ns as f64 * 1e-9;
        assert!((n - expected).abs() < 0.1 * expected, "{n} vs {expected}");
    }

    #[test]
    fn bursts_add_arrivals() {
        let wl = Workload {
            seed: 11,
            horizon_ns: 1_000_000_000,
        };
        let steady = tenant_arrivals(0, &tenant(2_000.0), &wl).len();
        let bursty_spec = tenant(2_000.0).with_burst(BurstSpec {
            period_ns: 100_000_000,
            burst_ns: 20_000_000,
            factor: 8.0,
        });
        let bursty = tenant_arrivals(0, &bursty_spec, &wl).len();
        assert!(bursty > steady + steady / 2, "{bursty} vs {steady}");
    }

    #[test]
    fn zero_rate_yields_no_arrivals() {
        let wl = Workload {
            seed: 1,
            horizon_ns: 1_000_000_000,
        };
        assert!(tenant_arrivals(0, &tenant(0.0), &wl).is_empty());
    }

    #[test]
    fn merged_stream_is_ordered_and_complete() {
        let wl = Workload {
            seed: 5,
            horizon_ns: 500_000_000,
        };
        let tenants = [tenant(4_000.0), tenant(1_000.0)];
        let merged = merge_arrivals(&tenants, &wl);
        let per: usize = (0..2)
            .map(|i| tenant_arrivals(i, &tenants[i], &wl).len())
            .sum();
        assert_eq!(merged.len(), per);
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        // Independent streams: both tenants contribute.
        assert!(merged.iter().any(|a| a.tenant == 0));
        assert!(merged.iter().any(|a| a.tenant == 1));
    }
}
