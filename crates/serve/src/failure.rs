//! Seeded instance-failure and recovery schedules.
//!
//! Replica outages are generated *ahead of time* as a deterministic
//! [`FailurePlan`]: per replica, an alternating renewal process with
//! exponential time-to-failure (mean `mtbf_ns`) and exponential repair
//! (mean `mttr_ns`), drawn from a `SmallRng` stream derived from the spec
//! seed and the replica id — the same derivation discipline as
//! [`workload`](crate::workload) tenant streams. Because the plan is a
//! pure function of `(spec, replicas, horizon)`, both serving drivers
//! consult identical outage intervals, and failure handling stays inside
//! the deterministic scheduling recurrence: a replica that is down at a
//! dispatch instant simply advances its free time to the recovery edge
//! (failover — the turn passes to surviving replicas), and a batch whose
//! service window an outage cuts into is killed at the failure edge with
//! its requests retried or dropped (see [`SimCore::requeue`]).
//!
//! [`SimCore::requeue`]: crate::sim::SimCore

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Failure process parameters for the replica fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Mean time between failures per replica [ns] (exponential).
    pub mtbf_ns: u64,
    /// Mean time to recovery per outage [ns] (exponential, ≥ 1 ns).
    pub mttr_ns: u64,
    /// Seed of the failure process (independent of the workload seed).
    pub seed: u64,
}

impl FailureSpec {
    pub(crate) fn validate(&self) {
        assert!(self.mtbf_ns > 0, "zero MTBF");
        assert!(self.mttr_ns > 0, "zero MTTR");
    }
}

/// One outage interval: the replica is down on `[down_ns, up_ns)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// Failure edge [ns].
    pub down_ns: u64,
    /// Recovery edge [ns] (exclusive; the replica serves again at `up_ns`).
    pub up_ns: u64,
}

/// Pre-generated outage schedule for every replica: per replica a sorted,
/// non-overlapping interval list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailurePlan {
    outages: Vec<Vec<Outage>>,
}

/// Splitmix-style stream derivation, a different tweak constant than the
/// workload's tenant streams so failure and arrival randomness never
/// alias even under equal seeds.
fn replica_seed(master: u64, replica: usize) -> u64 {
    master
        .wrapping_add((replica as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left(29)
        ^ 0xA076_1D64_78BD_642F_u64.rotate_left(3)
}

impl FailurePlan {
    /// A plan with no outages at all (failure modeling disabled).
    pub fn none(replicas: usize) -> Self {
        FailurePlan {
            outages: vec![Vec::new(); replicas],
        }
    }

    /// Generate the outage schedule for `replicas` instances with failure
    /// edges inside `[0, horizon_ns)` (recoveries may extend past the
    /// horizon, draining work started before it).
    pub fn generate(spec: &FailureSpec, replicas: usize, horizon_ns: u64) -> Self {
        spec.validate();
        let outages = (0..replicas)
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(replica_seed(spec.seed, r));
                let mut list = Vec::new();
                let mut t = 0.0f64;
                loop {
                    let u: f64 = rng.gen();
                    t += -(1.0 - u).ln() * spec.mtbf_ns as f64;
                    if t >= horizon_ns as f64 {
                        break;
                    }
                    let down = t as u64;
                    let v: f64 = rng.gen();
                    let repair = (-(1.0 - v).ln() * spec.mttr_ns as f64) as u64;
                    let up = down + repair.max(1);
                    list.push(Outage {
                        down_ns: down,
                        up_ns: up,
                    });
                    t = up as f64;
                }
                list
            })
            .collect();
        FailurePlan { outages }
    }

    /// True when no replica ever fails.
    pub fn is_empty(&self) -> bool {
        self.outages.iter().all(Vec::is_empty)
    }

    /// The outage intervals of one replica.
    pub fn outages(&self, replica: usize) -> &[Outage] {
        &self.outages[replica]
    }

    /// If `replica` is down at instant `t_ns`, the recovery edge it must
    /// wait for; `None` when the replica is up.
    pub fn down_until(&self, replica: usize, t_ns: u64) -> Option<u64> {
        let list = &self.outages[replica];
        // First outage with down_ns > t; its predecessor may cover t.
        let i = list.partition_point(|o| o.down_ns <= t_ns);
        if i == 0 {
            return None;
        }
        let o = list[i - 1];
        (t_ns < o.up_ns).then_some(o.up_ns)
    }

    /// The first outage whose failure edge lies strictly inside
    /// `(from_ns, to_ns)` — the outage that would kill a batch serving on
    /// that window. A failure edge exactly at `from_ns` is the caller's
    /// dispatch-time [`down_until`](Self::down_until) case, not a kill.
    pub fn outage_in(&self, replica: usize, from_ns: u64, to_ns: u64) -> Option<Outage> {
        let list = &self.outages[replica];
        let i = list.partition_point(|o| o.down_ns <= from_ns);
        list.get(i).copied().filter(|o| o.down_ns < to_ns)
    }

    /// Total downtime of one replica clipped to `[0, until_ns)`.
    pub fn downtime_ns(&self, replica: usize, until_ns: u64) -> u64 {
        self.outages[replica]
            .iter()
            .map(|o| {
                o.up_ns
                    .min(until_ns)
                    .saturating_sub(o.down_ns.min(until_ns))
            })
            .sum()
    }

    /// Downtime of one replica overlapping `[from_ns, to_ns)` — the
    /// per-window downtime column of the serving telemetry.
    pub fn downtime_in(&self, replica: usize, from_ns: u64, to_ns: u64) -> u64 {
        self.outages[replica]
            .iter()
            .map(|o| {
                o.up_ns
                    .min(to_ns)
                    .saturating_sub(o.down_ns.max(from_ns).min(to_ns))
            })
            .sum()
    }

    /// Total outages across the fleet.
    pub fn total_outages(&self) -> u64 {
        self.outages.iter().map(|l| l.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> FailureSpec {
        FailureSpec {
            mtbf_ns: 10_000_000,
            mttr_ns: 2_000_000,
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = FailurePlan::generate(&spec(7), 3, 100_000_000);
        let b = FailurePlan::generate(&spec(7), 3, 100_000_000);
        let c = FailurePlan::generate(&spec(8), 3, 100_000_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.total_outages() > 0);
    }

    #[test]
    fn outages_are_sorted_and_disjoint() {
        let plan = FailurePlan::generate(&spec(3), 4, 500_000_000);
        for r in 0..4 {
            let list = plan.outages(r);
            for o in list {
                assert!(o.down_ns < o.up_ns);
            }
            for w in list.windows(2) {
                assert!(w[0].up_ns <= w[1].down_ns);
            }
        }
    }

    #[test]
    fn replicas_fail_independently() {
        let plan = FailurePlan::generate(&spec(1), 2, 1_000_000_000);
        assert_ne!(plan.outages(0), plan.outages(1));
    }

    #[test]
    fn down_until_brackets_outages() {
        let plan = FailurePlan {
            outages: vec![vec![
                Outage {
                    down_ns: 100,
                    up_ns: 200,
                },
                Outage {
                    down_ns: 500,
                    up_ns: 650,
                },
            ]],
        };
        assert_eq!(plan.down_until(0, 0), None);
        assert_eq!(plan.down_until(0, 99), None);
        assert_eq!(plan.down_until(0, 100), Some(200));
        assert_eq!(plan.down_until(0, 199), Some(200));
        assert_eq!(plan.down_until(0, 200), None);
        assert_eq!(plan.down_until(0, 500), Some(650));
        assert_eq!(plan.down_until(0, 1_000), None);
    }

    #[test]
    fn outage_in_finds_kills_exclusively() {
        let plan = FailurePlan {
            outages: vec![vec![Outage {
                down_ns: 300,
                up_ns: 400,
            }]],
        };
        // Failure edge strictly inside the service window kills.
        assert_eq!(
            plan.outage_in(0, 250, 350),
            Some(Outage {
                down_ns: 300,
                up_ns: 400
            })
        );
        // Edge at the window start is the dispatch-time case, not a kill.
        assert_eq!(plan.outage_in(0, 300, 350), None);
        // Window ends exactly at the edge: batch completes first.
        assert_eq!(plan.outage_in(0, 200, 300), None);
        assert_eq!(plan.outage_in(0, 400, 500), None);
    }

    #[test]
    fn downtime_clips_to_the_window() {
        let plan = FailurePlan {
            outages: vec![vec![Outage {
                down_ns: 100,
                up_ns: 300,
            }]],
        };
        assert_eq!(plan.downtime_ns(0, 1_000), 200);
        assert_eq!(plan.downtime_ns(0, 200), 100);
        assert_eq!(plan.downtime_ns(0, 50), 0);
    }

    #[test]
    fn interval_downtime_overlaps_exactly() {
        let plan = FailurePlan {
            outages: vec![vec![
                Outage {
                    down_ns: 100,
                    up_ns: 300,
                },
                Outage {
                    down_ns: 500,
                    up_ns: 600,
                },
            ]],
        };
        assert_eq!(plan.downtime_in(0, 0, 1_000), 300);
        assert_eq!(plan.downtime_in(0, 0, 100), 0);
        assert_eq!(plan.downtime_in(0, 150, 250), 100);
        assert_eq!(plan.downtime_in(0, 200, 550), 150);
        assert_eq!(plan.downtime_in(0, 600, 1_000), 0);
        // Window sliced into halves conserves total downtime.
        assert_eq!(
            plan.downtime_in(0, 0, 500) + plan.downtime_in(0, 500, 1_000),
            plan.downtime_in(0, 0, 1_000)
        );
    }

    #[test]
    fn mean_downtime_tracks_mttr_over_mtbf() {
        let s = spec(11);
        let horizon = 4_000_000_000u64;
        let plan = FailurePlan::generate(&s, 8, horizon);
        let down: u64 = (0..8).map(|r| plan.downtime_ns(r, horizon)).sum();
        let frac = down as f64 / (8.0 * horizon as f64);
        let expect = s.mttr_ns as f64 / (s.mtbf_ns + s.mttr_ns) as f64;
        assert!(
            (frac - expect).abs() < 0.5 * expect,
            "downtime fraction {frac} vs {expect}"
        );
    }

    #[test]
    fn empty_plan_never_fails() {
        let plan = FailurePlan::none(3);
        assert!(plan.is_empty());
        assert_eq!(plan.down_until(1, 12345), None);
        assert_eq!(plan.outage_in(2, 0, u64::MAX), None);
        assert_eq!(plan.downtime_ns(0, u64::MAX), 0);
    }
}
