//! Multi-worker execution: one `crossbeam` scoped worker per replica,
//! draining the shared scheduling core under a `parking_lot` mutex.
//!
//! Determinism argument: the single-threaded driver evaluates the
//! recurrence "the replica with minimum free time (ties: lowest id)
//! takes the next batch". Here each worker owns one replica and is
//! allowed to call [`SimCore::next_batch`] only while its replica *is*
//! that minimum — enforced under the lock, with a condvar to park the
//! others. The worker publishes its new free time before releasing the
//! lock, so the scheduling decisions (and therefore the core's admission
//! and queue bookkeeping) happen in exactly the single-threaded order.
//! Per-batch completion results are computed outside the lock into
//! worker-local vectors, then merged by the gap-free batch index — which
//! also fixes the floating-point accumulation order in report assembly.
//! The result is bit-identical to [`run_serving`](crate::run_serving).

use crate::report::{assemble_report, ServingReport};
use crate::shard::{ShardConfig, ShardServingReport, ShardedSim};
use crate::sim::{finish_batch, BatchResult, ServeConfig, SimCore};
use crate::workload::{merge_arrivals, TenantSpec, Workload};
use parking_lot::{Condvar, Mutex};

struct Shared {
    core: SimCore,
    /// Per-replica free time; `u64::MAX` once the replica retires.
    free: Vec<u64>,
    done: Vec<bool>,
}

impl Shared {
    /// The active replica with minimum free time (ties: lowest id).
    fn turn(&self) -> Option<usize> {
        (0..self.free.len())
            .filter(|&r| !self.done[r])
            .min_by_key(|&r| (self.free[r], r))
    }
}

/// Run the serving simulation with one worker thread per replica.
///
/// Produces a [`ServingReport`] bit-identical to
/// [`run_serving`](crate::run_serving) on the same inputs.
pub fn run_serving_parallel(
    tenants: &[TenantSpec],
    wl: &Workload,
    cfg: &ServeConfig,
) -> ServingReport {
    let _span = autohet_obs::trace::span("serve.run_parallel");
    cfg.validate();
    let plan = cfg.failure_plan(wl);
    let shared = Mutex::new(Shared {
        core: SimCore::new(
            tenants.len(),
            merge_arrivals(tenants, wl),
            cfg,
            wl.horizon_ns,
        ),
        free: vec![0; cfg.replicas],
        done: vec![false; cfg.replicas],
    });
    let parked = Condvar::new();
    let per_worker: Vec<Vec<BatchResult>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.replicas)
            .map(|w| {
                let shared = &shared;
                let parked = &parked;
                let plan = &plan;
                s.spawn(move |_| {
                    let _span = autohet_obs::trace::span("serve.worker");
                    let mut mine: Vec<BatchResult> = Vec::new();
                    let mut guard = shared.lock();
                    loop {
                        if guard.turn() != Some(w) {
                            parked.wait(&mut guard);
                            continue;
                        }
                        let free_w = guard.free[w];
                        // Down at the free instant: wait out the outage
                        // (identical to the single-threaded step order —
                        // the bump happens while this replica is the
                        // minimum, before any core call).
                        if let Some(up) = plan.down_until(w, free_w) {
                            guard.free[w] = up;
                            parked.notify_all();
                            continue;
                        }
                        let Some(at) = guard.core.peek_dispatch(free_w) else {
                            guard.done[w] = true;
                            guard.free[w] = u64::MAX;
                            parked.notify_all();
                            return mine;
                        };
                        // Down at the dispatch instant: fail over.
                        if let Some(up) = plan.down_until(w, at) {
                            guard.free[w] = up;
                            parked.notify_all();
                            continue;
                        }
                        let job = guard
                            .core
                            .next_batch(free_w)
                            .expect("peeked batch vanished");
                        let spec = &tenants[job.tenant];
                        let completion =
                            job.start_ns + spec.deployment.service_ns(job.requests.len());
                        match plan.outage_in(w, job.start_ns, completion) {
                            Some(o) => {
                                // Killed mid-service: requeue *under the
                                // lock* — later dispatches depend on it.
                                guard.free[w] = o.up_ns;
                                guard.core.requeue(job, o.down_ns, cfg.retry_deadline_ns);
                                parked.notify_all();
                            }
                            None => {
                                // Health effects mutate shared state and
                                // the replica's free time, so they run
                                // under the lock at the same recurrence
                                // point as the single-threaded driver.
                                let (errored, next_free) =
                                    guard.core.apply_health(w, &job, completion);
                                guard.free[w] = next_free;
                                parked.notify_all();
                                drop(guard);
                                // Out-of-lock work: fold the batch into
                                // this worker's local results.
                                mine.push(finish_batch(spec, job, completion, errored));
                                guard = shared.lock();
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving worker panicked"))
            .collect()
    })
    .expect("serving worker pool panicked");

    let mut batches: Vec<BatchResult> = per_worker.into_iter().flatten().collect();
    batches.sort_unstable_by_key(|b| b.index);
    let core = shared.into_inner().core;
    assemble_report(tenants, wl, cfg, &core, &batches, &plan)
}

/// Epoch-parallel driver for the sharded runtime: between barriers each
/// shard touches only its own state, so shards step concurrently on
/// `threads` crossbeam workers; every barrier (settle → steal →
/// autoscale → swap) runs single-threaded. The schedule of decisions is
/// *identical* to [`run_sharded`](crate::run_sharded) — shard stepping
/// is independent and barrier order is fixed — so the report is
/// bit-identical to both sequential drivers (asserted by tests and the
/// cross-driver proptests).
pub fn run_sharded_threaded(
    tenants: &[TenantSpec],
    wl: &Workload,
    cfg: &ShardConfig,
    threads: usize,
) -> ShardServingReport {
    let _span = autohet_obs::trace::span("serve.run_sharded_threaded");
    let threads = threads.max(1);
    let mut sim = ShardedSim::new(tenants, wl, cfg);
    let ends = sim.epoch_ends();
    let chunk = sim.shards.len().div_ceil(threads);
    let step_all = |shards: &mut [crate::shard::Shard], e_end: u64| {
        crossbeam::thread::scope(|s| {
            for group in shards.chunks_mut(chunk) {
                s.spawn(move |_| {
                    for sh in group {
                        sh.step(tenants, e_end);
                    }
                });
            }
        })
        .expect("shard worker panicked");
    };
    for (e, &end) in ends.iter().enumerate() {
        step_all(&mut sim.shards, end);
        sim.barrier(e, end);
    }
    step_all(&mut sim.shards, u64::MAX);
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use crate::sim::run_serving;
    use crate::workload::BurstSpec;
    use autohet_accel::AccelConfig;
    use autohet_dnn::zoo;
    use autohet_xbar::XbarShape;

    fn deployment(model: autohet_dnn::Model) -> Deployment {
        let strategy = vec![XbarShape::square(128); model.layers.len()];
        Deployment::compile(&model.name, &model, &strategy, &AccelConfig::default())
    }

    fn mixed_tenants() -> Vec<TenantSpec> {
        let lenet = deployment(zoo::lenet5());
        let micro = deployment(zoo::micro_cnn());
        let lenet_rate = 0.8 * lenet.max_rate_rps();
        let micro_rate = 0.5 * micro.max_rate_rps();
        let lenet_slo = (6.0 * lenet.pipeline.fill_ns) as u64;
        let micro_slo = (6.0 * micro.pipeline.fill_ns) as u64;
        vec![
            TenantSpec::new("lenet", lenet, lenet_rate, lenet_slo).with_burst(BurstSpec {
                period_ns: 40_000_000,
                burst_ns: 8_000_000,
                factor: 4.0,
            }),
            TenantSpec::new("micro", micro, micro_rate, micro_slo),
        ]
    }

    #[test]
    fn parallel_matches_single_threaded_bit_for_bit() {
        let tenants = mixed_tenants();
        let wl = Workload {
            seed: 1234,
            horizon_ns: 40_000_000,
        };
        for replicas in [1usize, 2, 3, 4] {
            for queue_depth in [8usize, 64] {
                let cfg = ServeConfig {
                    replicas,
                    queue_depth,
                    ..ServeConfig::default()
                };
                let single = run_serving(&tenants, &wl, &cfg);
                let multi = run_serving_parallel(&tenants, &wl, &cfg);
                // The acceptance-criteria trio, spelled out…
                for (s, m) in single.tenants.iter().zip(&multi.tenants) {
                    assert_eq!(s.submitted, m.submitted);
                    assert_eq!(s.completed, m.completed);
                    assert_eq!(s.rejected, m.rejected);
                    assert_eq!(s.histogram, m.histogram);
                }
                // …and full bit-identity on top.
                assert_eq!(single, multi, "replicas={replicas} depth={queue_depth}");
            }
        }
    }

    #[test]
    fn parallel_matches_single_threaded_under_failures() {
        let tenants = mixed_tenants();
        let wl = Workload {
            seed: 77,
            horizon_ns: 40_000_000,
        };
        for replicas in [2usize, 3, 4] {
            let cfg = ServeConfig {
                replicas,
                failures: Some(crate::failure::FailureSpec {
                    mtbf_ns: 3_000_000,
                    mttr_ns: 500_000,
                    seed: 13,
                }),
                ..ServeConfig::default()
            };
            let single = run_serving(&tenants, &wl, &cfg);
            let multi = run_serving_parallel(&tenants, &wl, &cfg);
            assert!(
                single.total_retried > 0 || single.total_failed > 0,
                "failure config too tame to exercise the kill path"
            );
            assert_eq!(single, multi, "replicas={replicas}");
        }
    }

    #[test]
    fn parallel_matches_single_threaded_under_drift_and_recovery() {
        let tenants = mixed_tenants();
        let wl = Workload {
            seed: 55,
            horizon_ns: 40_000_000,
        };
        for replicas in [1usize, 2, 3, 4] {
            let cfg = ServeConfig {
                replicas,
                health: Some(crate::sim::HealthSpec {
                    err_ppm_per_ms: 30_000,
                    ..Default::default()
                }),
                ..ServeConfig::default()
            };
            let single = run_serving(&tenants, &wl, &cfg);
            let multi = run_serving_parallel(&tenants, &wl, &cfg);
            assert!(
                single.total_errored > 0 && single.replica_trips.iter().sum::<u64>() > 0,
                "drift config too tame to exercise the recovery path"
            );
            assert_eq!(single, multi, "replicas={replicas}");
        }
        // Drift, hard failures, and recovery all at once.
        let cfg = ServeConfig {
            replicas: 3,
            health: Some(crate::sim::HealthSpec {
                err_ppm_per_ms: 30_000,
                ..Default::default()
            }),
            failures: Some(crate::failure::FailureSpec {
                mtbf_ns: 3_000_000,
                mttr_ns: 500_000,
                seed: 13,
            }),
            ..ServeConfig::default()
        };
        let single = run_serving(&tenants, &wl, &cfg);
        let multi = run_serving_parallel(&tenants, &wl, &cfg);
        assert_eq!(single, multi);
    }

    #[test]
    fn parallel_is_itself_deterministic_across_runs() {
        let tenants = mixed_tenants();
        let wl = Workload {
            seed: 99,
            horizon_ns: 30_000_000,
        };
        let cfg = ServeConfig {
            replicas: 3,
            ..ServeConfig::default()
        };
        let a = run_serving_parallel(&tenants, &wl, &cfg);
        let b = run_serving_parallel(&tenants, &wl, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_handles_empty_workload() {
        let mut tenants = mixed_tenants();
        for t in &mut tenants {
            t.rate_rps = 0.0;
        }
        let wl = Workload {
            seed: 0,
            horizon_ns: 1_000_000,
        };
        let cfg = ServeConfig {
            replicas: 4,
            ..ServeConfig::default()
        };
        let r = run_serving_parallel(&tenants, &wl, &cfg);
        assert_eq!(r.total_completed, 0);
        assert_eq!(r.batches, 0);
    }
}
