//! Compiled deployments: one (model, strategy, config) triple frozen into
//! the two numbers serving needs — batch service time and per-request
//! energy — plus the full reports for observability.

use autohet_accel::{
    evaluate, pipeline_report, AccelConfig, DegradedEvalReport, EvalEngine, EvalReport,
    FaultedEvalReport, PipelineReport, RepairReport,
};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;

/// A model + per-layer crossbar strategy compiled against an accelerator
/// configuration, ready to serve requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Label used in reports (e.g. `"alexnet/autohet"`).
    pub name: String,
    /// Pipelined execution analysis — the service-time model.
    pub pipeline: PipelineReport,
    /// Whole-model evaluation — the energy/area/utilization model.
    pub eval: EvalReport,
}

impl Deployment {
    /// Compile `model` under `strategy` on `cfg`.
    ///
    /// Panics if `strategy` does not assign exactly one shape per layer.
    pub fn compile(name: &str, model: &Model, strategy: &[XbarShape], cfg: &AccelConfig) -> Self {
        assert_eq!(
            strategy.len(),
            model.layers.len(),
            "strategy must assign one shape per layer of {}",
            model.name
        );
        Deployment {
            name: name.to_string(),
            pipeline: pipeline_report(model, strategy, cfg),
            eval: evaluate(model, strategy, cfg),
        }
    }

    /// [`Self::compile`] against an existing memoized engine (reuses its
    /// model/config and strategy cache for the evaluation half).
    pub fn with_engine(name: &str, engine: &EvalEngine, strategy: &[XbarShape]) -> Self {
        Deployment {
            name: name.to_string(),
            pipeline: pipeline_report(engine.model(), strategy, engine.config()),
            eval: engine.evaluate(strategy),
        }
    }

    /// This deployment re-compiled against a fault-repaired evaluation:
    /// every pipeline stage is stretched by its layer's repair latency
    /// factor (re-serialization over surviving crossbars) and the
    /// energy/area half is replaced by the faulted evaluation — so
    /// serving sees both the latency and the energy cost of running on
    /// damaged hardware. An ideal fault map leaves the pipeline
    /// untouched (spare provisioning may still change area).
    pub fn with_degradation(&self, faulted: &FaultedEvalReport) -> Self {
        self.stretched("faults", &faulted.repair, &faulted.eval)
    }

    /// [`Self::with_degradation`] for a lifetime-epoch evaluation
    /// ([`EvalEngine::evaluate_degraded`](autohet_accel::EvalEngine::evaluate_degraded)):
    /// the pipeline is stretched by the epoch's repair outcome and the
    /// energy/area half replaced by the epoch evaluation, so serving runs
    /// on the hardware as it stands at hour `t` of its life.
    pub fn with_degraded(&self, epoch: &DegradedEvalReport) -> Self {
        self.stretched("drift", &epoch.repair, &epoch.eval)
    }

    fn stretched(&self, suffix: &str, repair: &RepairReport, eval: &EvalReport) -> Self {
        let stage_ns: Vec<f64> = self
            .pipeline
            .stage_ns
            .iter()
            .enumerate()
            .map(|(i, &s)| s * repair.latency_factor(i))
            .collect();
        let (bottleneck_layer, &bottleneck_ns) = stage_ns
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty pipeline");
        Deployment {
            name: format!("{}+{suffix}", self.name),
            pipeline: PipelineReport {
                fill_ns: stage_ns.iter().sum(),
                bottleneck_layer,
                bottleneck_ns,
                stage_ns,
            },
            eval: eval.clone(),
        }
    }

    /// Service time for a batch of `n` requests [ns] (integer, ≥ 1).
    pub fn service_ns(&self, n: usize) -> u64 {
        self.pipeline.batch_service_ns(n)
    }

    /// Energy charged per served request [nJ].
    pub fn energy_per_request_nj(&self) -> f64 {
        self.eval.energy_nj()
    }

    /// Steady-state capacity of one replica at full pipelining [req/s].
    pub fn max_rate_rps(&self) -> f64 {
        self.pipeline.throughput_sps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;

    #[test]
    fn compile_matches_direct_reports() {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        let cfg = AccelConfig::default();
        let d = Deployment::compile("lenet", &m, &strategy, &cfg);
        assert_eq!(d.pipeline, pipeline_report(&m, &strategy, &cfg));
        assert_eq!(d.eval, evaluate(&m, &strategy, &cfg));
        assert!(d.service_ns(1) >= 1);
        assert!(d.service_ns(8) > d.service_ns(1));
        assert!(d.energy_per_request_nj() > 0.0);
        assert!(d.max_rate_rps() > 0.0);
    }

    #[test]
    fn engine_path_is_identical_to_direct_path() {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::new(72, 64); m.layers.len()];
        let cfg = AccelConfig::default().with_tile_sharing();
        let engine = EvalEngine::new(m.clone(), cfg);
        let a = Deployment::compile("a", &m, &strategy, &cfg);
        let b = Deployment::with_engine("a", &engine, &strategy);
        assert_eq!(a, b);
    }

    #[test]
    fn degradation_stretches_service_and_swaps_energy() {
        use autohet_accel::RepairPolicy;
        use autohet_xbar::fault::FaultRates;
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        let cfg = AccelConfig::default();
        let engine = EvalEngine::new(m.clone(), cfg);
        let healthy = Deployment::compile("lenet", &m, &strategy, &cfg);

        // Ideal faults, no spares provisioned: only the label changes.
        let ideal = engine.evaluate_faulted(
            &strategy,
            7,
            FaultRates::ideal(),
            &RepairPolicy::no_spares(autohet_accel::DegradationMode::Reserialize),
        );
        let same = healthy.with_degradation(&ideal);
        assert_eq!(same.pipeline, healthy.pipeline);
        assert_eq!(same.eval, healthy.eval);

        // Real damage past what remapping absorbs: re-serialization
        // stretches the damaged stages, so single-sample service slows.
        let hurt = engine.evaluate_faulted(
            &strategy,
            7,
            FaultRates::dead(0.7),
            &RepairPolicy::no_spares(autohet_accel::DegradationMode::Reserialize),
        );
        assert!(hurt.repair.degraded > 0, "{:?}", hurt.repair);
        let degraded = healthy.with_degradation(&hurt);
        assert!(degraded.service_ns(1) > healthy.service_ns(1));
        // The bottleneck stage may survive untouched, so throughput can
        // only stay equal or drop — never improve.
        assert!(degraded.max_rate_rps() <= healthy.max_rate_rps());
        assert_eq!(degraded.eval, hurt.eval);
        let sum: f64 = degraded.pipeline.stage_ns.iter().sum();
        assert!((degraded.pipeline.fill_ns - sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one shape per layer")]
    fn compile_rejects_wrong_length_strategy() {
        let m = zoo::lenet5();
        Deployment::compile("bad", &m, &[XbarShape::square(64)], &AccelConfig::default());
    }
}
