//! Compiled deployments: one (model, strategy, config) triple frozen into
//! the two numbers serving needs — batch service time and per-request
//! energy — plus the full reports for observability.

use autohet_accel::{
    evaluate, pipeline_report, AccelConfig, EvalEngine, EvalReport, PipelineReport,
};
use autohet_dnn::Model;
use autohet_xbar::XbarShape;

/// A model + per-layer crossbar strategy compiled against an accelerator
/// configuration, ready to serve requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Label used in reports (e.g. `"alexnet/autohet"`).
    pub name: String,
    /// Pipelined execution analysis — the service-time model.
    pub pipeline: PipelineReport,
    /// Whole-model evaluation — the energy/area/utilization model.
    pub eval: EvalReport,
}

impl Deployment {
    /// Compile `model` under `strategy` on `cfg`.
    ///
    /// Panics if `strategy` does not assign exactly one shape per layer.
    pub fn compile(name: &str, model: &Model, strategy: &[XbarShape], cfg: &AccelConfig) -> Self {
        assert_eq!(
            strategy.len(),
            model.layers.len(),
            "strategy must assign one shape per layer of {}",
            model.name
        );
        Deployment {
            name: name.to_string(),
            pipeline: pipeline_report(model, strategy, cfg),
            eval: evaluate(model, strategy, cfg),
        }
    }

    /// [`Self::compile`] against an existing memoized engine (reuses its
    /// model/config and strategy cache for the evaluation half).
    pub fn with_engine(name: &str, engine: &EvalEngine, strategy: &[XbarShape]) -> Self {
        Deployment {
            name: name.to_string(),
            pipeline: pipeline_report(engine.model(), strategy, engine.config()),
            eval: engine.evaluate(strategy),
        }
    }

    /// Service time for a batch of `n` requests [ns] (integer, ≥ 1).
    pub fn service_ns(&self, n: usize) -> u64 {
        self.pipeline.batch_service_ns(n)
    }

    /// Energy charged per served request [nJ].
    pub fn energy_per_request_nj(&self) -> f64 {
        self.eval.energy_nj()
    }

    /// Steady-state capacity of one replica at full pipelining [req/s].
    pub fn max_rate_rps(&self) -> f64 {
        self.pipeline.throughput_sps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::zoo;

    #[test]
    fn compile_matches_direct_reports() {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::square(128); m.layers.len()];
        let cfg = AccelConfig::default();
        let d = Deployment::compile("lenet", &m, &strategy, &cfg);
        assert_eq!(d.pipeline, pipeline_report(&m, &strategy, &cfg));
        assert_eq!(d.eval, evaluate(&m, &strategy, &cfg));
        assert!(d.service_ns(1) >= 1);
        assert!(d.service_ns(8) > d.service_ns(1));
        assert!(d.energy_per_request_nj() > 0.0);
        assert!(d.max_rate_rps() > 0.0);
    }

    #[test]
    fn engine_path_is_identical_to_direct_path() {
        let m = zoo::lenet5();
        let strategy = vec![XbarShape::new(72, 64); m.layers.len()];
        let cfg = AccelConfig::default().with_tile_sharing();
        let engine = EvalEngine::new(m.clone(), cfg);
        let a = Deployment::compile("a", &m, &strategy, &cfg);
        let b = Deployment::with_engine("a", &engine, &strategy);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one shape per layer")]
    fn compile_rejects_wrong_length_strategy() {
        let m = zoo::lenet5();
        Deployment::compile("bad", &m, &[XbarShape::square(64)], &AccelConfig::default());
    }
}
