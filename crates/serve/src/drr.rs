//! Deficit round-robin (DRR) weighted fair queueing across tenants.
//!
//! Replaces the global "oldest head request wins" FIFO policy of the
//! original scheduler inside each shard: backlogged tenants sit on a
//! ring, each carries a deficit counter, and a tenant may dispatch only
//! when its deficit covers the batch cost (cost = requests drained).
//! Passing the turn to a ready tenant tops its deficit up by
//! `quantum × weight`, so over any busy interval the requests served per
//! tenant are proportional to its [`TenantSpec::weight`] — the classic
//! Shreedhar & Varghese guarantee, adapted in two ways to the serving
//! recurrence:
//!
//! - **One dispatch per call.** The scheduler asks for exactly one batch
//!   at a time (a replica just freed). A tenant whose deficit still
//!   covers another batch keeps the turn — the ring does not rotate —
//!   so consecutive calls continue its service quantum exactly where a
//!   textbook DRR loop would.
//! - **Time gating.** A tenant on the ring whose batch is not yet
//!   dispatchable at the decision instant (window not expired, batch not
//!   full) is rotated past *without* a top-up; it keeps its deficit and
//!   its round position ends, which is fair: it could not have used the
//!   turn.
//!
//! Everything is integer arithmetic on a deterministic walk, so both
//! the linear-scan reference and the heap-mode scheduler evolve the ring
//! identically.
//!
//! [`TenantSpec::weight`]: crate::workload::TenantSpec::weight

use std::collections::VecDeque;

/// The per-tenant quantities [`DrrRing::select`] needs, abstracted so
/// the shard scheduler can back them with its own tenant state (and
/// tests with a toy harness).
pub trait DrrAccess {
    /// Earliest instant the tenant's head batch may dispatch.
    fn ready_ns(&self, gid: usize) -> u64;
    /// Requests the tenant's next batch would drain (≥ 1 while
    /// backlogged).
    fn cost(&self, gid: usize) -> u64;
    /// The tenant's fair-share weight (≥ 1).
    fn weight(&self, gid: usize) -> u64;
    /// Current deficit counter.
    fn deficit(&self, gid: usize) -> u64;
    /// Overwrite the deficit counter.
    fn set_deficit(&mut self, gid: usize, v: u64);
}

/// The ring of backlogged tenants plus the turn marker. Ring order is
/// scheduler state: it evolves deterministically with the selection
/// sequence and is part of what the bit-identity tests pin down.
#[derive(Debug, Clone, Default)]
pub struct DrrRing {
    ring: VecDeque<usize>,
    /// The tenant currently holding the service turn (it sits at the
    /// ring front and has already received this round's top-up).
    turn: Option<usize>,
}

impl DrrRing {
    pub fn new() -> Self {
        DrrRing::default()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring order, front to back (the front tenant serves next).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ring.iter().copied()
    }

    /// A tenant became backlogged: join at the back of the ring.
    pub fn push(&mut self, gid: usize) {
        debug_assert!(!self.ring.contains(&gid));
        self.ring.push_back(gid);
    }

    /// Remove a tenant wherever it sits (migration / drained elsewhere).
    /// Returns whether it was present.
    pub fn remove(&mut self, gid: usize) -> bool {
        if let Some(pos) = self.ring.iter().position(|&g| g == gid) {
            self.ring.remove(pos);
            if self.turn == Some(gid) {
                self.turn = None;
            }
            true
        } else {
            false
        }
    }

    /// Pick the tenant to dispatch at instant `at` and charge its
    /// deficit for the batch ([`DrrAccess::cost`] requests). At least
    /// one ring tenant must be ready at `at` (the scheduler only calls
    /// this at a dispatchable instant). Returns the selected tenant,
    /// which is left at the ring front holding the turn; follow up with
    /// [`served`](Self::served) after draining its queue.
    pub fn select<A: DrrAccess>(&mut self, a: &mut A, at: u64, quantum: u64) -> usize {
        debug_assert!(
            self.ring.iter().any(|&g| a.ready_ns(g) <= at),
            "DRR select at a non-dispatchable instant"
        );
        // A ready tenant gains ≥ quantum ≥ 1 deficit per full cycle and
        // needs at most `cost` of it, so the walk terminates within
        // (max ready cost) cycles; the guard trips on contract bugs
        // rather than hanging the simulation.
        let mut steps = 0usize;
        let max_cost = self
            .ring
            .iter()
            .filter(|&&g| a.ready_ns(g) <= at)
            .map(|&g| a.cost(g))
            .max()
            .unwrap_or(1);
        let bound = self.ring.len() * (max_cost as usize + 2) + 2;
        loop {
            let gid = *self.ring.front().expect("DRR select on an empty ring");
            if a.ready_ns(gid) <= at {
                if self.turn != Some(gid) {
                    // Turn starts: top up once.
                    self.turn = Some(gid);
                    let w = a.weight(gid).max(1);
                    a.set_deficit(gid, a.deficit(gid).saturating_add(quantum.max(1) * w));
                }
                let cost = a.cost(gid);
                if a.deficit(gid) >= cost {
                    a.set_deficit(gid, a.deficit(gid) - cost);
                    return gid;
                }
            }
            // Not ready, or quantum spent: the turn passes.
            self.turn = None;
            let g = self.ring.pop_front().expect("DRR ring emptied mid-walk");
            self.ring.push_back(g);
            steps += 1;
            assert!(steps <= bound, "DRR walk failed to converge");
        }
    }

    /// Bookkeeping after the selected tenant's queue was drained:
    /// `emptied` tenants leave the ring (deficit resets — carrying
    /// credit across idle periods would let a tenant burst past its
    /// share); a still-backlogged tenant keeps the front slot and the
    /// turn while its deficit lasts.
    pub fn served<A: DrrAccess>(&mut self, a: &mut A, gid: usize, emptied: bool) {
        debug_assert_eq!(self.ring.front(), Some(&gid));
        if emptied {
            self.ring.pop_front();
            self.turn = None;
            a.set_deficit(gid, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy backlog: each lane has a queue length, a ready time, and a
    /// weight; every dispatch drains up to `max_batch` requests.
    struct Toy {
        queue: Vec<u64>,
        ready: Vec<u64>,
        weight: Vec<u64>,
        deficit: Vec<u64>,
        max_batch: u64,
    }

    impl Toy {
        fn new(queues: &[u64], weights: &[u64], max_batch: u64) -> Self {
            Toy {
                queue: queues.to_vec(),
                ready: vec![0; queues.len()],
                weight: weights.to_vec(),
                deficit: vec![0; queues.len()],
                max_batch,
            }
        }
    }

    impl DrrAccess for Toy {
        fn ready_ns(&self, g: usize) -> u64 {
            self.ready[g]
        }
        fn cost(&self, g: usize) -> u64 {
            self.queue[g].min(self.max_batch)
        }
        fn weight(&self, g: usize) -> u64 {
            self.weight[g]
        }
        fn deficit(&self, g: usize) -> u64 {
            self.deficit[g]
        }
        fn set_deficit(&mut self, g: usize, v: u64) {
            self.deficit[g] = v;
        }
    }

    /// Run `n` dispatches against an endless backlog and count requests
    /// served per lane.
    fn serve_n(toy: &mut Toy, ring: &mut DrrRing, n: usize) -> Vec<u64> {
        let mut served = vec![0u64; toy.queue.len()];
        for _ in 0..n {
            let g = ring.select(toy, 0, 1);
            let cost = toy.cost(g);
            served[g] += cost;
            toy.queue[g] -= cost;
            let emptied = toy.queue[g] == 0;
            ring.served(toy, g, emptied);
            if emptied {
                break;
            }
        }
        served
    }

    #[test]
    fn equal_weights_serve_equally() {
        let mut toy = Toy::new(&[1_000_000, 1_000_000], &[1, 1], 8);
        let mut ring = DrrRing::new();
        ring.push(0);
        ring.push(1);
        let served = serve_n(&mut toy, &mut ring, 400);
        let (a, b) = (served[0] as f64, served[1] as f64);
        assert!((a / b - 1.0).abs() < 0.02, "{a} vs {b}");
    }

    #[test]
    fn service_tracks_weights() {
        let mut toy = Toy::new(&[1_000_000; 3], &[1, 3, 6], 8);
        let mut ring = DrrRing::new();
        for g in 0..3 {
            ring.push(g);
        }
        let served = serve_n(&mut toy, &mut ring, 3000);
        let total: u64 = served.iter().sum();
        for (g, &s) in served.iter().enumerate() {
            let expected = total as f64 * toy.weight[g] as f64 / 10.0;
            let got = s as f64;
            assert!(
                (got - expected).abs() < 0.05 * expected,
                "lane {g}: served {got}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn no_backlogged_lane_starves() {
        // A heavyweight against three lightweights: every lane must be
        // selected within one full weighted round.
        let mut toy = Toy::new(&[1_000_000; 4], &[50, 1, 1, 1], 8);
        let mut ring = DrrRing::new();
        for g in 0..4 {
            ring.push(g);
        }
        let served = serve_n(&mut toy, &mut ring, 5000);
        for (g, &s) in served.iter().enumerate() {
            assert!(s > 0, "lane {g} starved: {served:?}");
        }
    }

    #[test]
    fn not_ready_lanes_are_passed_over_without_topup() {
        let mut toy = Toy::new(&[100, 100], &[1, 1], 8);
        toy.ready[0] = 1_000; // lane 0 not dispatchable yet
        let mut ring = DrrRing::new();
        ring.push(0);
        ring.push(1);
        let g = ring.select(&mut toy, 0, 1);
        assert_eq!(g, 1, "only the ready lane may serve");
        // Lane 0 kept its (zero) deficit: no top-up while unready.
        assert_eq!(toy.deficit[0], 0);
        // Once ready, lane 0 serves.
        toy.queue[1] -= toy.cost(1);
        ring.served(&mut toy, 1, false);
        let g = ring.select(&mut toy, 1_000, 1);
        assert!(g == 0 || g == 1);
    }

    #[test]
    fn emptied_lane_leaves_and_rejoins_at_the_back() {
        let mut toy = Toy::new(&[3, 1_000], &[1, 1], 8);
        let mut ring = DrrRing::new();
        ring.push(0);
        ring.push(1);
        // Lane 0 drains in one batch and leaves.
        let g = ring.select(&mut toy, 0, 8);
        assert_eq!(g, 0);
        toy.queue[0] = 0;
        ring.served(&mut toy, 0, true);
        assert_eq!(ring.len(), 1);
        assert_eq!(toy.deficit[0], 0, "deficit resets on leaving the ring");
        // It refills and rejoins behind lane 1.
        toy.queue[0] = 5;
        ring.push(0);
        let order: Vec<usize> = ring.iter().collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn a_lane_with_leftover_deficit_keeps_the_turn() {
        // Quantum large enough for two max batches: the front lane must
        // serve twice before the turn passes.
        let mut toy = Toy::new(&[1_000, 1_000], &[1, 1], 4);
        let mut ring = DrrRing::new();
        ring.push(0);
        ring.push(1);
        let first = ring.select(&mut toy, 0, 8);
        assert_eq!(first, 0);
        toy.queue[0] -= 4;
        ring.served(&mut toy, 0, false);
        let second = ring.select(&mut toy, 0, 8);
        assert_eq!(second, 0, "deficit 8−4 = 4 still covers a batch");
        toy.queue[0] -= 4;
        ring.served(&mut toy, 0, false);
        let third = ring.select(&mut toy, 0, 8);
        assert_eq!(third, 1, "quantum spent: the turn passes");
    }

    #[test]
    fn remove_fixes_the_turn_marker() {
        let mut toy = Toy::new(&[100, 100], &[1, 1], 8);
        let mut ring = DrrRing::new();
        ring.push(0);
        ring.push(1);
        let g = ring.select(&mut toy, 0, 1);
        assert_eq!(g, 0);
        assert!(ring.remove(0));
        assert!(!ring.remove(0));
        // With the turn cleared, lane 1 gets a fresh top-up and serves.
        let g = ring.select(&mut toy, 0, 1);
        assert_eq!(g, 1);
    }
}
