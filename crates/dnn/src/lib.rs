//! DNN workload substrate for the AutoHet reproduction.
//!
//! AutoHet (ICPP '24) maps deep neural networks onto heterogeneous ReRAM
//! crossbars. Everything the mapping and search layers need to know about a
//! network is *geometry*: per-layer kernel size, channel counts, strides and
//! feature-map sizes (the 10-dimensional RL state of the paper's Eq. 1 is
//! built from exactly these). This crate provides:
//!
//! - [`Layer`] / [`Model`]: layer geometry and whole-network descriptions,
//!   with fully-connected layers normalized to 1×1 convolutions as in the
//!   paper (§3.2).
//! - [`zoo`]: the three evaluation networks of the paper's Table 2
//!   (AlexNet, VGG16, ResNet152) plus small networks used by tests.
//! - [`Dataset`]: input-geometry descriptors for MNIST / CIFAR-10 /
//!   ImageNet and seeded synthetic data (the paper's metrics depend only on
//!   geometry, so synthetic pixels preserve every evaluated behaviour).
//! - [`tensor`] / [`ops`]: an exact floating-point and integer reference
//!   implementation of convolution / fully-connected / pooling, used as the
//!   golden model when validating the analog crossbar simulator.
//! - [`metrics`]: classification metrics (softmax, top-k, agreement) for
//!   functional-inference studies.
//! - [`quant`]: the 8-bit symmetric quantization used to program crossbars
//!   (§4.1 quantizes weights to 8 bits).

pub mod dataset;
pub mod layer;
pub mod metrics;
pub mod model;
pub mod ops;
pub mod quant;
pub mod tensor;
pub mod zoo;

pub use dataset::Dataset;
pub use layer::{Layer, LayerKind};
pub use model::{Model, ModelBuilder, Stage};
pub use tensor::Tensor;
