//! Reference ("golden model") neural-network operators.
//!
//! These exact implementations define what the analog crossbar pipeline is
//! supposed to compute: the functional simulator in `autohet-xbar` is
//! validated against the integer paths here, and end-to-end inference
//! through a mapped accelerator is validated against the float paths within
//! quantization tolerance.

use crate::layer::Layer;
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Unfold a CHW input into im2col columns for `layer`: the result is a
/// `(Cin·k²) × (out²)` matrix whose column `p` is the receptive field of
/// output pixel `p`. This mirrors exactly how the paper's Fig. 7 lays
/// kernels on crossbar columns: one MVM per output pixel.
pub fn im2col(layer: &Layer, input: &Tensor) -> Tensor {
    assert_eq!(
        input.shape(),
        &[layer.in_channels, layer.in_size, layer.in_size]
    );
    let k = layer.kernel;
    let o = layer.out_size();
    let rows = layer.weight_rows();
    let mut out = Tensor::zeros(vec![rows, o * o]);
    let pad = layer.padding as isize;
    for oy in 0..o {
        for ox in 0..o {
            let col = oy * o + ox;
            let base_y = (oy * layer.stride) as isize - pad;
            let base_x = (ox * layer.stride) as isize - pad;
            for c in 0..layer.in_channels {
                for ky in 0..k {
                    for kx in 0..k {
                        let y = base_y + ky as isize;
                        let x = base_x + kx as isize;
                        let row = (c * k + ky) * k + kx;
                        let v = if y >= 0
                            && x >= 0
                            && (y as usize) < layer.in_size
                            && (x as usize) < layer.in_size
                        {
                            input.at3(c, y as usize, x as usize)
                        } else {
                            0.0
                        };
                        *out.at2_mut(row, col) = v;
                    }
                }
            }
        }
    }
    out
}

/// Convolution via im2col + matrix product. `weights` is the unfolded
/// `(Cin·k²) × Cout` matrix (paper Fig. 7 layout). Output is CHW.
pub fn conv2d(layer: &Layer, input: &Tensor, weights: &Tensor) -> Tensor {
    assert_eq!(weights.shape(), &[layer.weight_rows(), layer.weight_cols()]);
    let cols = im2col(layer, input);
    let o = layer.out_size();
    let mut out = Tensor::zeros(vec![layer.out_channels, o, o]);
    let rows = layer.weight_rows();
    for oc in 0..layer.out_channels {
        for p in 0..o * o {
            let mut acc = 0.0_f32;
            for r in 0..rows {
                acc += weights.at2(r, oc) * cols.at2(r, p);
            }
            *out.at3_mut(oc, p / o, p % o) = acc;
        }
    }
    out
}

/// Fully-connected layer: `y = Wᵀ x` with `W` in the same unfolded
/// `(in × out)` layout the mapper uses.
pub fn fully_connected(input: &[f32], weights: &Tensor) -> Vec<f32> {
    let (rows, cols) = (weights.shape()[0], weights.shape()[1]);
    assert_eq!(input.len(), rows);
    let mut out = vec![0.0_f32; cols];
    for (r, &x) in input.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (c, o) in out.iter_mut().enumerate() {
            *o += weights.at2(r, c) * x;
        }
    }
    out
}

/// Depthwise convolution: channel `c` of the output convolves channel `c`
/// of the input with its own `k×k` kernel. `kernels` is the layer's
/// `(k², channels)` matrix ([`crate::Layer::kernel_matrix_shape`]).
pub fn depthwise_conv2d(layer: &Layer, input: &Tensor, kernels: &Tensor) -> Tensor {
    assert_eq!(layer.kind, crate::LayerKind::DepthwiseConv);
    assert_eq!(kernels.shape(), &[layer.kernel_elems(), layer.in_channels]);
    let cols = im2col(layer, input);
    let k2 = layer.kernel_elems();
    let o = layer.out_size();
    let mut out = Tensor::zeros(vec![layer.in_channels, o, o]);
    for c in 0..layer.in_channels {
        for p in 0..o * o {
            let mut acc = 0.0_f32;
            for e in 0..k2 {
                // im2col row ordering stacks channels: channel c's patch
                // occupies rows [c·k², (c+1)·k²).
                acc += kernels.at2(e, c) * cols.at2(c * k2 + e, p);
            }
            *out.at3_mut(c, p / o, p % o) = acc;
        }
    }
    out
}

/// Exact integer matrix-vector product, the contract the bit-sliced analog
/// crossbar must reproduce: `y[c] = Σ_r w[r][c] · x[r]` over `i32`.
pub fn mvm_i32(weights_rc: &[Vec<i32>], input: &[i32]) -> Vec<i32> {
    let rows = weights_rc.len();
    assert!(rows > 0);
    let cols = weights_rc[0].len();
    assert_eq!(input.len(), rows);
    let mut out = vec![0_i32; cols];
    for (r, row) in weights_rc.iter().enumerate() {
        assert_eq!(row.len(), cols);
        let x = input[r];
        for (c, &w) in row.iter().enumerate() {
            out[c] += w * x;
        }
    }
    out
}

/// In-place ReLU.
pub fn relu(t: &mut Tensor) {
    for v in t.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Non-overlapping max pooling with a square window. Truncates edge pixels
/// that do not fill a full window, matching [`crate::ModelBuilder::pool`].
pub fn max_pool(input: &Tensor, window: usize) -> Tensor {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oh, ow) = (h / window, w / window);
    let mut out = Tensor::zeros(vec![c, oh, ow]);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for dy in 0..window {
                    for dx in 0..window {
                        m = m.max(input.at3(ch, oy * window + dy, ox * window + dx));
                    }
                }
                *out.at3_mut(ch, oy, ox) = m;
            }
        }
    }
    out
}

/// Deterministic synthetic weights for `layer`, in the unfolded
/// `(Cin·k²) × Cout` layout, drawn from `[-0.5, 0.5)`. Seeded per layer so
/// models are reproducible (DESIGN.md §1: weight values never influence the
/// architecture-search metrics).
pub fn synthetic_weights(layer: &Layer, seed: u64) -> Tensor {
    let (rows, cols) = layer.kernel_matrix_shape();
    let mut rng =
        SmallRng::seed_from_u64(seed ^ (layer.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen::<f32>() - 0.5).collect();
    Tensor::from_vec(vec![rows, cols], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    /// Direct (definition-based) convolution to cross-check im2col.
    fn conv2d_direct(layer: &Layer, input: &Tensor, weights: &Tensor) -> Tensor {
        let k = layer.kernel;
        let o = layer.out_size();
        let mut out = Tensor::zeros(vec![layer.out_channels, o, o]);
        let pad = layer.padding as isize;
        for oc in 0..layer.out_channels {
            for oy in 0..o {
                for ox in 0..o {
                    let mut acc = 0.0_f32;
                    for c in 0..layer.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let y = (oy * layer.stride) as isize - pad + ky as isize;
                                let x = (ox * layer.stride) as isize - pad + kx as isize;
                                if y < 0 || x < 0 {
                                    continue;
                                }
                                let (y, x) = (y as usize, x as usize);
                                if y >= layer.in_size || x >= layer.in_size {
                                    continue;
                                }
                                let row = (c * k + ky) * k + kx;
                                acc += input.at3(c, y, x) * weights.at2(row, oc);
                            }
                        }
                    }
                    *out.at3_mut(oc, oy, ox) = acc;
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn im2col_conv_matches_direct_conv_same_padding() {
        let l = Layer::conv(0, 3, 5, 3, 1, 1, 8);
        let input = crate::Dataset::Cifar10.synthetic_image(1); // 3×32×32
                                                                // crop to 8×8 via a fresh tensor
        let mut small = Tensor::zeros(vec![3, 8, 8]);
        for c in 0..3 {
            for y in 0..8 {
                for x in 0..8 {
                    *small.at3_mut(c, y, x) = input.at3(c, y, x);
                }
            }
        }
        let w = synthetic_weights(&l, 42);
        assert_close(&conv2d(&l, &small, &w), &conv2d_direct(&l, &small, &w));
    }

    #[test]
    fn im2col_conv_matches_direct_conv_strided_no_pad() {
        let l = Layer::conv(0, 2, 4, 3, 2, 0, 9);
        let mut input = Tensor::zeros(vec![2, 9, 9]);
        for (i, v) in input.data_mut().iter_mut().enumerate() {
            *v = (i as f32 * 0.173).sin();
        }
        let w = synthetic_weights(&l, 7);
        assert_close(&conv2d(&l, &input, &w), &conv2d_direct(&l, &input, &w));
    }

    #[test]
    fn depthwise_matches_per_channel_direct_conv() {
        // Depthwise == running a 1-channel conv per channel.
        let layer = Layer::depthwise(0, 3, 3, 1, 1, 6);
        let mut input = Tensor::zeros(vec![3, 6, 6]);
        for (i, v) in input.data_mut().iter_mut().enumerate() {
            *v = ((i * 7 % 13) as f32) * 0.1;
        }
        let kernels = synthetic_weights(&layer, 2);
        assert_eq!(kernels.shape(), &[9, 3]);
        let out = depthwise_conv2d(&layer, &input, &kernels);
        for c in 0..3 {
            let single = Layer::conv(0, 1, 1, 3, 1, 1, 6);
            let mut ch_in = Tensor::zeros(vec![1, 6, 6]);
            for y in 0..6 {
                for x in 0..6 {
                    *ch_in.at3_mut(0, y, x) = input.at3(c, y, x);
                }
            }
            let w = Tensor::from_vec(vec![9, 1], (0..9).map(|e| kernels.at2(e, c)).collect());
            let ref_out = conv2d(&single, &ch_in, &w);
            for y in 0..6 {
                for x in 0..6 {
                    assert!(
                        (out.at3(c, y, x) - ref_out.at3(0, y, x)).abs() < 1e-5,
                        "channel {c} pixel ({y},{x})"
                    );
                }
            }
        }
    }

    #[test]
    fn fc_matches_manual() {
        let w = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = fully_connected(&[1.0, 0.5, -1.0], &w);
        // col0: 1*1 + 3*0.5 + 5*(-1) = -2.5 ; col1: 2 + 2 - 6 = -2
        assert!((y[0] + 2.5).abs() < 1e-6);
        assert!((y[1] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn mvm_i32_matches_manual() {
        let w = vec![vec![1, -2], vec![3, 4]];
        let y = mvm_i32(&w, &[5, -1]);
        assert_eq!(y, vec![5 - 3, -10 - 4]);
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let mut t = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -0.1]);
        relu(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn max_pool_2x2() {
        let t = Tensor::from_vec(vec![1, 4, 4], (0..16).map(|i| i as f32).collect());
        let p = max_pool(&t, 2);
        assert_eq!(p.shape(), &[1, 2, 2]);
        assert_eq!(p.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_truncates_ragged_edge() {
        let t = Tensor::from_vec(vec![1, 5, 5], (0..25).map(|i| i as f32).collect());
        let p = max_pool(&t, 2);
        assert_eq!(p.shape(), &[1, 2, 2]);
    }

    #[test]
    fn synthetic_weights_are_deterministic_and_layer_distinct() {
        let a = Layer::conv(0, 2, 3, 3, 1, 1, 8);
        let b = Layer::conv(1, 2, 3, 3, 1, 1, 8);
        assert_eq!(
            synthetic_weights(&a, 5).data(),
            synthetic_weights(&a, 5).data()
        );
        assert_ne!(
            synthetic_weights(&a, 5).data(),
            synthetic_weights(&b, 5).data()
        );
    }

    #[test]
    fn im2col_shape() {
        let l = Layer::conv(0, 3, 4, 3, 1, 1, 32);
        let img = crate::Dataset::Cifar10.synthetic_image(0);
        let cols = im2col(&l, &img);
        assert_eq!(cols.shape(), &[27, 1024]);
    }
}
