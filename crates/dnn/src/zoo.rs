//! The evaluation networks of the paper's Table 2, plus small models used
//! by tests and examples.
//!
//! Table 2 describes the three workloads structurally (`aCb-c` = `a` CONV
//! layers with `b×b` kernels and `c` output channels; `Fd` = an FC layer
//! with `d` output neurons). The paper pairs AlexNet with MNIST, VGG16 with
//! CIFAR-10 and ResNet152 with ImageNet (§4.1); pooling stages are standard
//! for these networks and consume no crossbars.

use crate::dataset::Dataset;
use crate::layer::Layer;
use crate::model::{Model, ModelBuilder};

/// AlexNet on MNIST, per Table 2:
/// `C3-64, C3-192, C3-384, 2C3-256, F4096, F4096, F10` (8 mappable layers).
pub fn alexnet() -> Model {
    ModelBuilder::new("AlexNet", Dataset::Mnist)
        .conv(64, 3)
        .pool(2) // 28 → 14
        .conv(192, 3)
        .pool(2) // 14 → 7
        .conv(384, 3)
        .conv(256, 3)
        .conv(256, 3)
        .pool(2) // 7 → 3
        .fc(4096)
        .fc(4096)
        .fc(10)
        .build()
}

/// VGG16 on CIFAR-10, per Table 2:
/// `2C3-64, 2C3-128, 3C3-256, 6C3-512, F4096, F1000, F10` (16 mappable
/// layers, matching the L1–L16 indexing of the paper's Table 3).
pub fn vgg16() -> Model {
    ModelBuilder::new("VGG16", Dataset::Cifar10)
        .conv(64, 3)
        .conv(64, 3)
        .pool(2) // 32 → 16
        .conv(128, 3)
        .conv(128, 3)
        .pool(2) // 16 → 8
        .conv(256, 3)
        .conv(256, 3)
        .conv(256, 3)
        .pool(2) // 8 → 4
        .conv(512, 3)
        .conv(512, 3)
        .conv(512, 3)
        .pool(2) // 4 → 2
        .conv(512, 3)
        .conv(512, 3)
        .conv(512, 3)
        .pool(2) // 2 → 1
        .fc(4096)
        .fc(1000)
        .fc(10)
        .build()
}

/// ResNet152 on ImageNet: the standard bottleneck architecture
/// (stem `C7-64`, stages of [3, 8, 36, 3] bottlenecks with widths
/// 64/128/256/512 and ×4 expansion, four 1×1 projection shortcuts, `F1000`).
/// This realizes Table 2's mix of `C1-*` and `C3-*` layers; 156 mappable
/// layers in total.
pub fn resnet152() -> Model {
    let mut layers: Vec<Layer> = Vec::with_capacity(156);
    let mut idx = 0usize;
    let mut push = |layers: &mut Vec<Layer>,
                    cin: usize,
                    cout: usize,
                    k: usize,
                    s: usize,
                    p: usize,
                    size: usize| {
        layers.push(Layer::conv(idx, cin, cout, k, s, p, size));
        idx += 1;
    };

    // Stem: 7×7/2 conv then 2× max-pool.
    let mut size = 224;
    push(&mut layers, 3, 64, 7, 2, 3, size);
    size = 112 / 2; // stride-2 conv → 112, pool → 56
    let mut in_ch = 64;

    let stages: [(usize, usize); 4] = [(3, 64), (8, 128), (36, 256), (3, 512)];
    for (stage_i, &(blocks, width)) in stages.iter().enumerate() {
        let out_ch = width * 4;
        for b in 0..blocks {
            // First block of stages 2–4 downsamples in its 3×3 conv.
            let stride = if b == 0 && stage_i > 0 { 2 } else { 1 };
            // 1×1 reduce.
            push(&mut layers, in_ch, width, 1, 1, 0, size);
            // 3×3 (possibly strided).
            push(&mut layers, width, width, 3, stride, 1, size);
            let out_size = if stride == 2 { size / 2 } else { size };
            // 1×1 expand.
            push(&mut layers, width, out_ch, 1, 1, 0, out_size);
            if b == 0 {
                // Projection shortcut on the block input.
                push(&mut layers, in_ch, out_ch, 1, stride, 0, size);
            }
            in_ch = out_ch;
            size = out_size;
        }
    }

    // Global average pool (7×7 → 1×1) then the classifier.
    layers.push(Layer::fc(idx, in_ch, 1000));

    Model {
        name: "ResNet152".into(),
        dataset: Dataset::ImageNet,
        layers,
        // Residual topology is not a linear chain: mapping-only model
        // (functional inference unsupported; see `Model::stages`).
        stages: Vec::new(),
    }
}

/// All three Table 2 workloads, in the paper's presentation order.
pub fn paper_models() -> Vec<Model> {
    vec![alexnet(), vgg16(), resnet152()]
}

/// LeNet-5 on MNIST (LeCun et al. '98, the paper's [14]): the classic
/// small CNN, useful as an additional edge-class workload with 5×5
/// kernels that fit no power-of-two crossbar height cleanly.
pub fn lenet5() -> Model {
    ModelBuilder::new("LeNet5", Dataset::Mnist)
        .conv_spec(6, 5, 1, 2) // 28 → 28
        .pool(2) // 28 → 14
        .conv_spec(16, 5, 1, 0) // 14 → 10
        .pool(2) // 10 → 5
        .fc(120)
        .fc(84)
        .fc(10)
        .build()
}

/// ResNet-18 on ImageNet: the basic-block (two 3×3 convs) ResNet, a
/// mid-size workload between VGG16 and ResNet152. Built layer-by-layer
/// like [`resnet152`] (residual topology ⇒ mapping-only model).
pub fn resnet18() -> Model {
    let mut layers: Vec<Layer> = Vec::with_capacity(21);
    let mut idx = 0usize;
    let mut push = |layers: &mut Vec<Layer>,
                    cin: usize,
                    cout: usize,
                    k: usize,
                    s: usize,
                    p: usize,
                    size: usize| {
        layers.push(Layer::conv(idx, cin, cout, k, s, p, size));
        idx += 1;
    };

    let mut size = 224;
    push(&mut layers, 3, 64, 7, 2, 3, size);
    size = 112 / 2; // stride-2 stem then pool → 56
    let mut in_ch = 64;

    let stages: [(usize, usize); 4] = [(2, 64), (2, 128), (2, 256), (2, 512)];
    for (stage_i, &(blocks, width)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let stride = if b == 0 && stage_i > 0 { 2 } else { 1 };
            push(&mut layers, in_ch, width, 3, stride, 1, size);
            let out_size = if stride == 2 { size / 2 } else { size };
            push(&mut layers, width, width, 3, 1, 1, out_size);
            if b == 0 && stage_i > 0 {
                // 1×1 projection shortcut.
                push(&mut layers, in_ch, width, 1, stride, 0, size);
            }
            in_ch = width;
            size = out_size;
        }
    }
    layers.push(Layer::fc(idx, in_ch, 1000));

    Model {
        name: "ResNet18".into(),
        dataset: Dataset::ImageNet,
        layers,
        stages: Vec::new(),
    }
}

/// MobileNetV1 on ImageNet (beyond-paper workload, DESIGN.md §6): the
/// depthwise-separable architecture whose depthwise stages pack
/// diagonally onto crossbars — the layer class where crossbar-level
/// heterogeneity matters most. 28 mappable layers: stem +
/// 13 × (depthwise, pointwise) + classifier.
pub fn mobilenet_v1() -> Model {
    let mut b = ModelBuilder::new("MobileNetV1", Dataset::ImageNet).conv_spec(32, 3, 2, 1); // 224 → 112
                                                                                            // (pointwise width, depthwise stride) pairs, standard V1 schedule.
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (width, stride) in blocks {
        b = b.depthwise_spec(3, stride, 1).conv(width, 1);
    }
    // Global average pool (7 → 1) then the classifier.
    b = b.pool(7);
    b.fc(1000).build()
}

/// A small CIFAR-style CNN used by functional-inference tests and the
/// quickstart example: big enough to exercise multi-crossbar mapping, small
/// enough to simulate numerically.
pub fn test_cnn() -> Model {
    ModelBuilder::new("TestCNN", Dataset::Cifar10)
        .conv(8, 3)
        .pool(2)
        .conv(16, 3)
        .pool(2)
        .conv(16, 1)
        .pool(2)
        .fc(32)
        .fc(10)
        .build()
}

/// A 4-layer model small enough for exhaustive strategy enumeration,
/// used to measure the RL agent's optimality gap.
pub fn micro_cnn() -> Model {
    ModelBuilder::new("MicroCNN", Dataset::Mnist)
        .conv(8, 3)
        .pool(2)
        .conv(12, 3)
        .pool(2)
        .fc(24)
        .fc(10)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn vgg16_has_sixteen_layers_matching_table2() {
        let m = vgg16();
        assert_eq!(m.num_layers(), 16);
        let convs: Vec<_> = m.layers_of_kind(LayerKind::Conv).collect();
        assert_eq!(convs.len(), 13);
        // Block widths: 2×64, 2×128, 3×256, 6×512.
        let widths: Vec<usize> = convs.iter().map(|l| l.out_channels).collect();
        assert_eq!(
            widths,
            vec![64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512]
        );
        // FC head per Table 2.
        let fcs: Vec<usize> = m
            .layers_of_kind(LayerKind::Fc)
            .map(|l| l.out_channels)
            .collect();
        assert_eq!(fcs, vec![4096, 1000, 10]);
    }

    #[test]
    fn vgg16_layer4_matches_paper_section_3_3() {
        // §3.3: "the fourth layer of VGG16 (i.e., k = 3, Cin = 128,
        // Cout = 128)".
        let m = vgg16();
        let l4 = &m.layers[3];
        assert_eq!(l4.kernel, 3);
        assert_eq!(l4.in_channels, 128);
        assert_eq!(l4.out_channels, 128);
    }

    #[test]
    fn vgg16_conv_share_of_3x3_is_total() {
        // §3.3 reports 81.25% of VGG16 *weight matrices* (13 of 16 layers)
        // come from 3×3 kernels; as a share of CONV layers it is 100%.
        let m = vgg16();
        assert_eq!(m.conv_kernel_share(3), 1.0);
        assert!((13.0_f64 / 16.0 - 0.8125).abs() < 1e-12);
    }

    #[test]
    fn alexnet_structure_matches_table2() {
        let m = alexnet();
        assert_eq!(m.num_layers(), 8);
        let convs: Vec<usize> = m
            .layers_of_kind(LayerKind::Conv)
            .map(|l| l.out_channels)
            .collect();
        assert_eq!(convs, vec![64, 192, 384, 256, 256]);
        assert!(m.layers.iter().take(5).all(|l| l.kernel == 3));
        let fcs: Vec<usize> = m
            .layers_of_kind(LayerKind::Fc)
            .map(|l| l.out_channels)
            .collect();
        assert_eq!(fcs, vec![4096, 4096, 10]);
        assert_eq!(m.dataset, Dataset::Mnist);
    }

    #[test]
    fn resnet152_layer_census() {
        let m = resnet152();
        assert_eq!(m.num_layers(), 156);
        let c1 = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Conv && l.kernel == 1)
            .count();
        let c3 = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Conv && l.kernel == 3)
            .count();
        let c7 = m.layers.iter().filter(|l| l.kernel == 7).count();
        let fc = m.layers_of_kind(LayerKind::Fc).count();
        assert_eq!(c7, 1);
        assert_eq!(c3, 50); // 3 + 8 + 36 + 3
        assert_eq!(c1, 104); // 2 per block + 4 projections
        assert_eq!(fc, 1);
        // Classifier input is the 2048-wide globally-pooled feature.
        assert_eq!(m.layers.last().unwrap().in_channels, 2048);
        assert_eq!(m.layers.last().unwrap().out_channels, 1000);
    }

    #[test]
    fn resnet152_downsampling_path_is_consistent() {
        let m = resnet152();
        // Stem output is 56 after pool; last conv stage runs at 7×7.
        assert_eq!(m.layers[1].in_size, 56);
        let last_conv = m
            .layers
            .iter()
            .rev()
            .find(|l| l.kind == LayerKind::Conv)
            .unwrap();
        assert_eq!(last_conv.out_size(), 7);
    }

    #[test]
    fn resnet152_1x1_share_is_large() {
        // §3.3: 3×3 kernels are the minority (32.05%) of ResNet152 weight
        // matrices; 1×1 dominates.
        let m = resnet152();
        assert!(m.conv_kernel_share(1) > 0.6);
    }

    #[test]
    fn paper_models_order() {
        let names: Vec<String> = paper_models().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["AlexNet", "VGG16", "ResNet152"]);
    }

    #[test]
    fn lenet5_structure() {
        let m = lenet5();
        assert_eq!(m.num_layers(), 5);
        assert!(m.layers[0].kernel == 5 && m.layers[1].kernel == 5);
        // Classic flatten: 16 channels × 5×5.
        assert_eq!(m.layers[2].in_channels, 16 * 25);
        let fcs: Vec<usize> = m
            .layers_of_kind(LayerKind::Fc)
            .map(|l| l.out_channels)
            .collect();
        assert_eq!(fcs, vec![120, 84, 10]);
        // LeNet is a linear chain: functional inference supported.
        assert!(!m.stages.is_empty());
    }

    #[test]
    fn resnet18_census() {
        let m = resnet18();
        // 1 stem + 16 basic-block convs + 3 projections + 1 fc = 21.
        assert_eq!(m.num_layers(), 21);
        let c3 = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Conv && l.kernel == 3)
            .count();
        assert_eq!(c3, 16);
        let last_conv = m
            .layers
            .iter()
            .rev()
            .find(|l| l.kind == LayerKind::Conv)
            .unwrap();
        assert_eq!(last_conv.out_size(), 7);
        assert_eq!(m.layers.last().unwrap().in_channels, 512);
    }

    #[test]
    fn mobilenet_v1_census() {
        let m = mobilenet_v1();
        // stem + 13 dw + 13 pw + fc = 28.
        assert_eq!(m.num_layers(), 28);
        let dw = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::DepthwiseConv)
            .count();
        assert_eq!(dw, 13);
        // Depthwise layers preserve channels.
        for l in m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::DepthwiseConv)
        {
            assert_eq!(l.in_channels, l.out_channels);
            assert_eq!(l.kernel, 3);
        }
        // Final feature map is 7×7 before the global pool, classifier
        // input is 1024.
        assert_eq!(m.layers.last().unwrap().in_channels, 1024);
        // Depthwise infers through block-diagonal crossbars: full chain.
        assert!(!m.stages.is_empty());
    }

    #[test]
    fn test_models_are_small() {
        assert!(test_cnn().num_layers() <= 6);
        assert_eq!(micro_cnn().num_layers(), 4);
        assert!(micro_cnn().total_weights() < 100_000);
    }
}
