//! A minimal dense tensor used by the reference (golden-model) ops and the
//! functional crossbar simulation.
//!
//! Deliberately simple: row-major `f32` storage with shape checking. The
//! heavy numerical work in this repository happens inside the crossbar
//! simulator on integer lattices; this type only has to be correct.

use serde::{Deserialize, Serialize};

/// Dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Build from existing data; `data.len()` must equal the shape volume.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {:?} does not match data length {}",
            shape,
            data.len()
        );
        Tensor { shape, data }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access for a 3-D (CHW) tensor.
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (_, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(c * hh + h) * ww + w]
    }

    /// Mutable element access for a 3-D (CHW) tensor.
    pub fn at3_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3);
        let (_, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        &mut self.data[(c * hh + h) * ww + w]
    }

    /// Element access for a 2-D tensor.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for a 2-D tensor.
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let w = self.shape[1];
        &mut self.data[r * w + c]
    }

    /// Flatten into a 1-D tensor (no copy of semantics, data reused).
    pub fn flatten(mut self) -> Tensor {
        let n = self.data.len();
        self.shape = vec![n];
        self
    }

    /// Maximum absolute value, 0 for empty tensors. Used by the quantizer.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element (first one on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_volume() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_volume() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 5]);
    }

    #[test]
    fn chw_indexing_is_row_major() {
        let mut t = Tensor::zeros(vec![2, 2, 3]);
        *t.at3_mut(1, 0, 2) = 7.0;
        // offset = (1*2 + 0)*3 + 2 = 8
        assert_eq!(t.data()[8], 7.0);
        assert_eq!(t.at3(1, 0, 2), 7.0);
    }

    #[test]
    fn matrix_indexing() {
        let t = Tensor::from_vec(vec![2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.at2(1, 2), 5.0);
        assert_eq!(t.at2(0, 1), 1.0);
    }

    #[test]
    fn max_abs_and_argmax() {
        let t = Tensor::from_vec(vec![4], vec![-3.0, 1.0, 2.5, -0.5]);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(Tensor::zeros(vec![0]).argmax(), None);
    }

    #[test]
    fn flatten_preserves_data() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let f = t.clone().flatten();
        assert_eq!(f.shape(), &[4]);
        assert_eq!(f.data(), t.data());
    }
}
