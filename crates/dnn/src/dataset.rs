//! Dataset descriptors and synthetic input generation.
//!
//! The paper evaluates AlexNet on MNIST, VGG16 on CIFAR-10 and ResNet152 on
//! ImageNet (§4.1). Every reported metric — crossbar utilization, energy,
//! area, latency, RUE — is a function of *layer and input geometry* only, so
//! this reproduction ships dataset descriptors rather than the datasets
//! themselves, plus a seeded synthetic image generator for the functional
//! (numerical) crossbar simulation path. See DESIGN.md §1 for the
//! substitution rationale.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three evaluation datasets of the paper, as geometry descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// 28×28×1 grayscale digits, 10 classes.
    Mnist,
    /// 32×32×3 color images, 10 classes.
    Cifar10,
    /// 224×224×3 color images (canonical crop), 1000 classes.
    ImageNet,
}

impl Dataset {
    /// Input feature-map side length.
    pub fn input_size(self) -> usize {
        match self {
            Dataset::Mnist => 28,
            Dataset::Cifar10 => 32,
            Dataset::ImageNet => 224,
        }
    }

    /// Input channel count.
    pub fn input_channels(self) -> usize {
        match self {
            Dataset::Mnist => 1,
            Dataset::Cifar10 | Dataset::ImageNet => 3,
        }
    }

    /// Number of classification classes.
    pub fn num_classes(self) -> usize {
        match self {
            Dataset::Mnist | Dataset::Cifar10 => 10,
            Dataset::ImageNet => 1000,
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Mnist => "MNIST",
            Dataset::Cifar10 => "CIFAR-10",
            Dataset::ImageNet => "ImageNet",
        }
    }

    /// A deterministic synthetic input image in `[0, 1)`, CHW layout.
    ///
    /// Used by the functional inference path; pixel values never influence
    /// the architecture-search metrics.
    pub fn synthetic_image(self, seed: u64) -> Tensor {
        let c = self.input_channels();
        let s = self.input_size();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD0_5E_7A_11);
        let data: Vec<f32> = (0..c * s * s).map(|_| rng.gen::<f32>()).collect();
        Tensor::from_vec(vec![c, s, s], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper_section_4_1() {
        assert_eq!(Dataset::Mnist.input_size(), 28);
        assert_eq!(Dataset::Mnist.input_channels(), 1);
        assert_eq!(Dataset::Cifar10.input_size(), 32);
        assert_eq!(Dataset::Cifar10.input_channels(), 3);
        assert_eq!(Dataset::ImageNet.input_size(), 224);
        assert_eq!(Dataset::ImageNet.num_classes(), 1000);
    }

    #[test]
    fn synthetic_images_are_deterministic() {
        let a = Dataset::Cifar10.synthetic_image(7);
        let b = Dataset::Cifar10.synthetic_image(7);
        assert_eq!(a.data(), b.data());
        let c = Dataset::Cifar10.synthetic_image(8);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn synthetic_image_shape_and_range() {
        let img = Dataset::Mnist.synthetic_image(0);
        assert_eq!(img.shape(), &[1, 28, 28]);
        assert!(img.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
