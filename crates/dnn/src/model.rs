//! Whole-network descriptions and a builder that tracks feature-map
//! geometry through conv / pool / fc stages.

use crate::dataset::Dataset;
use crate::layer::{Layer, LayerKind};
use serde::{Deserialize, Serialize};

/// One step of a model's inference pipeline. Crossbars execute `Layer`
/// stages; the tile's pooling module executes `Pool` stages (paper Fig. 1
/// shows the pooling module beside the PEs — it consumes no crossbars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Run mappable layer `layers[i]` (conv or fc), followed by ReLU unless
    /// it is the final stage.
    Layer(usize),
    /// Non-overlapping max-pool with the given window.
    Pool(usize),
}

/// A DNN model as the mapper sees it: an ordered list of mappable layers
/// (convolutions and fully-connected layers; pooling only reshapes feature
/// maps and consumes no crossbars, matching the paper's accelerator where a
/// dedicated pooling module sits beside the PEs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Human-readable name, e.g. `"VGG16"`.
    pub name: String,
    /// Dataset the model is evaluated with (defines the input geometry).
    pub dataset: Dataset,
    /// Mappable layers, in inference order.
    pub layers: Vec<Layer>,
    /// Full inference pipeline for linear-chain models. Empty for models
    /// with non-chain topology (e.g. ResNet residual connections), which
    /// support mapping/metric evaluation but not functional inference.
    pub stages: Vec<Stage>,
}

impl Model {
    /// Number of mappable layers `N` (the RL episode length).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total weight count across all layers.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(Layer::num_weights).sum()
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Largest value of each normalization-relevant feature, used to scale
    /// the RL state vector into [0, 1].
    pub fn feature_maxima(&self) -> FeatureMaxima {
        let mut m = FeatureMaxima::default();
        for l in &self.layers {
            m.in_channels = m.in_channels.max(l.in_channels);
            m.out_channels = m.out_channels.max(l.out_channels);
            m.kernel_elems = m.kernel_elems.max(l.kernel_elems());
            m.stride = m.stride.max(l.stride);
            m.weights = m.weights.max(l.num_weights());
            m.in_size = m.in_size.max(l.in_size);
        }
        m
    }

    /// Iterate over layers of a given kind.
    pub fn layers_of_kind(&self, kind: LayerKind) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(move |l| l.kind == kind)
    }

    /// Fraction of convolutional layers whose kernel is `k`×`k`. The paper
    /// (§3.3) reports the share of 3×3-kernel weight matrices to motivate
    /// rectangle crossbars with heights that are multiples of 9.
    pub fn conv_kernel_share(&self, k: usize) -> f64 {
        let convs: Vec<_> = self.layers_of_kind(LayerKind::Conv).collect();
        if convs.is_empty() {
            return 0.0;
        }
        let matching = convs.iter().filter(|l| l.kernel == k).count();
        matching as f64 / convs.len() as f64
    }
}

/// Per-model maxima used for state normalization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureMaxima {
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel_elems: usize,
    pub stride: usize,
    pub weights: usize,
    pub in_size: usize,
}

/// Builder that threads feature-map geometry through the network, so model
/// definitions read like the paper's Table 2.
///
/// ```
/// use autohet_dnn::{Dataset, ModelBuilder};
///
/// let model = ModelBuilder::new("demo", Dataset::Cifar10)
///     .conv(16, 3)  // 3 → 16 channels, 3×3 "same" conv on 32×32
///     .pool(2)      // 32 → 16
///     .fc(10)
///     .build();
/// assert_eq!(model.num_layers(), 2);
/// assert_eq!(model.layers[1].in_channels, 16 * 16 * 16); // flattened
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    dataset: Dataset,
    layers: Vec<Layer>,
    stages: Vec<Stage>,
    /// Current spatial side length of the feature map.
    cur_size: usize,
    /// Current channel count (neuron count once an FC layer has been added).
    cur_channels: usize,
    /// Set once an FC layer is appended; conv/pool are illegal afterwards.
    flattened: bool,
}

impl ModelBuilder {
    /// Start a model whose input geometry comes from `dataset`.
    pub fn new(name: impl Into<String>, dataset: Dataset) -> Self {
        ModelBuilder {
            name: name.into(),
            dataset,
            layers: Vec::new(),
            stages: Vec::new(),
            cur_size: dataset.input_size(),
            cur_channels: dataset.input_channels(),
            flattened: false,
        }
    }

    /// Append a convolution with explicit stride/padding.
    pub fn conv_spec(
        mut self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(!self.flattened, "conv after fc in {}", self.name);
        let l = Layer::conv(
            self.layers.len(),
            self.cur_channels,
            out_channels,
            kernel,
            stride,
            padding,
            self.cur_size,
        );
        self.cur_size = l.out_size();
        self.cur_channels = out_channels;
        self.stages.push(Stage::Layer(self.layers.len()));
        self.layers.push(l);
        self
    }

    /// Append a "same"-padded stride-1 convolution (the common case in
    /// Table 2, where `aCb-c` rows are 3×3 pad-1 or 1×1 pad-0 convolutions).
    pub fn conv(self, out_channels: usize, kernel: usize) -> Self {
        let padding = kernel / 2;
        self.conv_spec(out_channels, kernel, 1, padding)
    }

    /// Append a depthwise convolution over the current channel count
    /// (MobileNet-style; channels are preserved). Depthwise layers map,
    /// cost-model and infer through block-diagonally programmed crossbars.
    pub fn depthwise_spec(mut self, kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(!self.flattened, "depthwise after fc in {}", self.name);
        let l = Layer::depthwise(
            self.layers.len(),
            self.cur_channels,
            kernel,
            stride,
            padding,
            self.cur_size,
        );
        self.cur_size = l.out_size();
        self.stages.push(Stage::Layer(self.layers.len()));
        self.layers.push(l);
        self
    }

    /// Append a non-overlapping max-pool; consumes no crossbars but halves
    /// (or otherwise divides) the feature-map side for subsequent layers.
    pub fn pool(mut self, window: usize) -> Self {
        assert!(!self.flattened, "pool after fc in {}", self.name);
        assert!(window >= 1 && self.cur_size >= window);
        self.cur_size /= window;
        self.stages.push(Stage::Pool(window));
        self
    }

    /// Append a fully-connected layer. The first FC flattens the feature
    /// map: its input neuron count is `channels × size²`.
    pub fn fc(mut self, out_neurons: usize) -> Self {
        let in_neurons = if self.flattened {
            self.cur_channels
        } else {
            self.cur_channels * self.cur_size * self.cur_size
        };
        self.flattened = true;
        let l = Layer::fc(self.layers.len(), in_neurons, out_neurons);
        self.cur_channels = out_neurons;
        self.cur_size = 1;
        self.stages.push(Stage::Layer(self.layers.len()));
        self.layers.push(l);
        self
    }

    /// Finish, yielding the immutable [`Model`].
    pub fn build(self) -> Model {
        assert!(!self.layers.is_empty(), "model {} has no layers", self.name);
        Model {
            name: self.name,
            dataset: self.dataset,
            layers: self.layers,
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Model {
        ModelBuilder::new("tiny", Dataset::Cifar10)
            .conv(8, 3)
            .pool(2)
            .conv(16, 3)
            .pool(2)
            .fc(32)
            .fc(10)
            .build()
    }

    #[test]
    fn builder_threads_geometry() {
        let m = tiny();
        assert_eq!(m.num_layers(), 4);
        // conv1: 3 -> 8 channels on 32×32
        assert_eq!(m.layers[0].in_channels, 3);
        assert_eq!(m.layers[0].in_size, 32);
        // conv2 sees the pooled 16×16 map
        assert_eq!(m.layers[1].in_size, 16);
        assert_eq!(m.layers[1].in_channels, 8);
        // fc1 flattens 16 channels × 8×8
        assert_eq!(m.layers[2].in_channels, 16 * 8 * 8);
        assert_eq!(m.layers[2].kind, LayerKind::Fc);
        // fc2 chains neuron counts
        assert_eq!(m.layers[3].in_channels, 32);
        assert_eq!(m.layers[3].out_channels, 10);
    }

    #[test]
    fn indices_are_sequential() {
        let m = tiny();
        for (i, l) in m.layers.iter().enumerate() {
            assert_eq!(l.index, i);
        }
    }

    #[test]
    fn feature_maxima_cover_all_layers() {
        let m = tiny();
        let fm = m.feature_maxima();
        assert_eq!(fm.in_channels, 16 * 8 * 8);
        assert_eq!(fm.kernel_elems, 9);
        assert_eq!(fm.in_size, 32);
        assert!(fm.weights >= 16 * 8 * 8 * 32);
    }

    #[test]
    fn kernel_share_counts_only_convs() {
        let m = tiny();
        assert_eq!(m.conv_kernel_share(3), 1.0);
        assert_eq!(m.conv_kernel_share(1), 0.0);
    }

    #[test]
    #[should_panic]
    fn conv_after_fc_is_rejected() {
        let _ = ModelBuilder::new("bad", Dataset::Mnist).fc(10).conv(4, 3);
    }

    #[test]
    fn total_macs_sums_layers() {
        let m = tiny();
        let s: usize = m.layers.iter().map(Layer::macs).sum();
        assert_eq!(m.total_macs(), s);
    }

    #[test]
    fn stages_interleave_layers_and_pools() {
        let m = tiny();
        assert_eq!(
            m.stages,
            vec![
                Stage::Layer(0),
                Stage::Pool(2),
                Stage::Layer(1),
                Stage::Pool(2),
                Stage::Layer(2),
                Stage::Layer(3),
            ]
        );
        // Every mappable layer appears exactly once in the pipeline.
        let layer_stages: Vec<usize> = m
            .stages
            .iter()
            .filter_map(|s| match s {
                Stage::Layer(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(layer_stages, (0..m.num_layers()).collect::<Vec<_>>());
    }
}
