//! Classification metrics for functional-inference studies.
//!
//! Used by the fault-injection and accuracy examples/tests to compare the
//! analog pipeline's decisions against the golden model.

use crate::tensor::Tensor;

/// Numerically stable softmax over a logit slice.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty());
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

/// Indices of the `k` largest logits, descending (ties broken by lower
/// index first).
pub fn top_k(logits: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap().then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Whether `label` is among the top-`k` predictions.
pub fn top_k_correct(logits: &Tensor, label: usize, k: usize) -> bool {
    top_k(logits.data(), k).contains(&label)
}

/// Fraction of (logits, label) pairs whose argmax matches the label.
pub fn accuracy(predictions: &[(Tensor, usize)]) -> f64 {
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .filter(|(t, label)| t.argmax() == Some(*label))
        .count();
    correct as f64 / predictions.len() as f64
}

/// Fraction of paired logit tensors whose argmax decisions agree — the
/// noise-robustness metric of the fault-injection study.
pub fn agreement(a: &[Tensor], b: &[Tensor]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 1.0;
    }
    let same = a
        .iter()
        .zip(b)
        .filter(|(x, y)| x.argmax() == y.argmax())
        .count();
    same as f64 / a.len() as f64
}

/// Index of the largest value (ties broken by lower index first), `None`
/// for an empty slice. Integer sibling of [`Tensor::argmax`] for the
/// bit-exact analog pipeline outputs.
pub fn argmax_i64(values: &[i64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .max_by(|(ai, av), (bi, bv)| av.cmp(bv).then(bi.cmp(ai)))
        .map(|(i, _)| i)
}

/// Mean absolute deviation between two integer output vectors.
pub fn mean_abs_dev_i64(a: &[i64], b: &[i64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y).abs() as f64).sum();
    sum / a.len() as f64
}

/// Largest absolute deviation between two integer output vectors.
pub fn max_abs_dev_i64(a: &[i64], b: &[i64]) -> i64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[1] > p[0]);
    }

    #[test]
    fn top_k_orders_descending() {
        assert_eq!(top_k(&[0.1, 0.9, 0.5, 0.9], 3), vec![1, 3, 2]);
        assert_eq!(top_k(&[1.0], 5), vec![0]);
    }

    #[test]
    fn top_k_correct_checks_membership() {
        let t = Tensor::from_vec(vec![4], vec![0.1, 0.9, 0.5, 0.2]);
        assert!(top_k_correct(&t, 1, 1));
        assert!(top_k_correct(&t, 2, 2));
        assert!(!top_k_correct(&t, 3, 2));
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let preds = vec![
            (Tensor::from_vec(vec![2], vec![0.9, 0.1]), 0),
            (Tensor::from_vec(vec![2], vec![0.2, 0.8]), 1),
            (Tensor::from_vec(vec![2], vec![0.7, 0.3]), 1),
        ];
        assert!((accuracy(&preds) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&[]), 0.0);
    }

    #[test]
    fn argmax_i64_breaks_ties_low() {
        assert_eq!(argmax_i64(&[3, 9, 9, 1]), Some(1));
        assert_eq!(argmax_i64(&[-5]), Some(0));
        assert_eq!(argmax_i64(&[]), None);
    }

    #[test]
    fn integer_deviations() {
        assert_eq!(
            mean_abs_dev_i64(&[1, 2, 3], &[1, 4, 0]),
            (0.0 + 2.0 + 3.0) / 3.0
        );
        assert_eq!(max_abs_dev_i64(&[1, 2, 3], &[1, 4, 0]), 3);
        assert_eq!(mean_abs_dev_i64(&[], &[]), 0.0);
        assert_eq!(max_abs_dev_i64(&[], &[]), 0);
    }

    #[test]
    fn agreement_compares_decisions() {
        let a = vec![Tensor::from_vec(vec![2], vec![1.0, 0.0])];
        let b = vec![Tensor::from_vec(vec![2], vec![0.6, 0.4])];
        let c = vec![Tensor::from_vec(vec![2], vec![0.0, 1.0])];
        assert_eq!(agreement(&a, &b), 1.0);
        assert_eq!(agreement(&a, &c), 0.0);
        assert_eq!(agreement(&[], &[]), 1.0);
    }
}
