//! 8-bit symmetric quantization.
//!
//! The paper's experiment platform quantizes DNN weights to 8 bits and
//! realizes each weight across eight 1-bit memristor cells (§4.1). This
//! module provides the fixed-point lattice both ends of that pipeline use:
//! floats are mapped to signed integers with a shared per-tensor scale, the
//! crossbars compute exactly on the integers, and results are rescaled.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Symmetric linear quantizer: `q = round(x / scale)` clamped to
/// `[-qmax, qmax]`, with `scale = max_abs / qmax`.
///
/// ```
/// use autohet_dnn::quant::Quantizer;
///
/// let q = Quantizer::fit_slice(&[-2.0, 0.5, 1.0], 8);
/// assert_eq!(q.quantize(-2.0), -127);
/// let err = (q.dequantize(q.quantize(0.5)) - 0.5).abs();
/// assert!(err <= q.max_error());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Real value represented by one integer step.
    pub scale: f32,
    /// Largest representable magnitude (e.g. 127 for 8-bit signed).
    pub qmax: i32,
}

impl Quantizer {
    /// Fit a quantizer of `bits` (including sign) to the data range of `t`.
    /// Degenerate all-zero tensors get a scale of 1 so round-trips stay
    /// exact.
    pub fn fit(t: &Tensor, bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "unsupported bit width {bits}");
        let qmax = (1_i32 << (bits - 1)) - 1;
        let max_abs = t.max_abs();
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / qmax as f32
        };
        Quantizer { scale, qmax }
    }

    /// Fit to a raw slice instead of a tensor.
    pub fn fit_slice(xs: &[f32], bits: u32) -> Self {
        let t = Tensor::from_vec(vec![xs.len()], xs.to_vec());
        Self::fit(&t, bits)
    }

    /// Quantize one value.
    pub fn quantize(&self, x: f32) -> i32 {
        let q = (x / self.scale).round() as i32;
        q.clamp(-self.qmax, self.qmax)
    }

    /// Reconstruct the real value of a quantized integer.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantize a whole tensor into a flat integer vector (row-major).
    pub fn quantize_tensor(&self, t: &Tensor) -> Vec<i32> {
        t.data().iter().map(|&x| self.quantize(x)).collect()
    }

    /// Largest absolute quantization error for values inside the fitted
    /// range: half a step.
    pub fn max_error(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Quantize an unfolded weight matrix to `bits` and return `(rows × cols)`
/// integer rows plus the quantizer, the exact form the crossbar programmer
/// consumes.
pub fn quantize_matrix(w: &Tensor, bits: u32) -> (Vec<Vec<i32>>, Quantizer) {
    assert_eq!(w.shape().len(), 2);
    let (rows, cols) = (w.shape()[0], w.shape()[1]);
    let q = Quantizer::fit(w, bits);
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut row = Vec::with_capacity(cols);
        for c in 0..cols {
            row.push(q.quantize(w.at2(r, c)));
        }
        out.push(row);
    }
    (out, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_covers_range() {
        let t = Tensor::from_vec(vec![3], vec![-2.0, 1.0, 0.5]);
        let q = Quantizer::fit(&t, 8);
        assert_eq!(q.qmax, 127);
        assert_eq!(q.quantize(-2.0), -127);
        assert_eq!(q.quantize(2.0), 127);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let t = Tensor::from_vec(vec![5], vec![-1.0, -0.3, 0.0, 0.42, 0.99]);
        let q = Quantizer::fit(&t, 8);
        for &x in t.data() {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.max_error() + 1e-7, "err {err} for {x}");
        }
    }

    #[test]
    fn zero_tensor_round_trips_exactly() {
        let t = Tensor::zeros(vec![4]);
        let q = Quantizer::fit(&t, 8);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
    }

    #[test]
    fn clamping_saturates_outliers() {
        let t = Tensor::from_vec(vec![1], vec![1.0]);
        let q = Quantizer::fit(&t, 8);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
    }

    #[test]
    fn quantize_matrix_layout() {
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, -1.0, 0.5, 0.25]);
        let (rows, q) = quantize_matrix(&w, 8);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![127, -127]);
        assert_eq!(rows[1][0], q.quantize(0.5));
    }

    #[test]
    fn lower_bit_widths_have_coarser_steps() {
        let t = Tensor::from_vec(vec![2], vec![-1.0, 1.0]);
        let q8 = Quantizer::fit(&t, 8);
        let q4 = Quantizer::fit(&t, 4);
        assert!(q4.scale > q8.scale);
        assert_eq!(q4.qmax, 7);
    }

    #[test]
    #[should_panic]
    fn silly_bit_width_is_rejected() {
        let t = Tensor::zeros(vec![1]);
        let _ = Quantizer::fit(&t, 1);
    }
}
