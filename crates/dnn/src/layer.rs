//! Per-layer geometry.
//!
//! A DNN layer, for mapping purposes, is the tuple the paper's Table 1
//! enumerates: kind (CONV/FC), kernel side `k`, input/output channels,
//! stride, and the input feature-map side. Fully-connected layers are
//! treated as 1×1 convolutions over a 1×1 feature map whose "channels" are
//! the neuron counts (paper §3.2: "we consider the FC layer as a special
//! kind of CONV layer by setting both ks and s to one").

use serde::{Deserialize, Serialize};

/// The layer families the mapper distinguishes (the paper's state feature
/// `t` covers CONV/FC; depthwise convolutions are a beyond-paper workload
/// extension — see DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolutional layer (`t = 1` in the RL state vector).
    Conv,
    /// Fully-connected layer (`t = 0` in the RL state vector).
    Fc,
    /// Depthwise convolution: each output channel convolves exactly one
    /// input channel. Kernels share no weight-matrix rows, so they pack
    /// *diagonally* onto a crossbar (one kernel per row-block per column)
    /// — the pathological low-utilization case that motivates small/tall
    /// crossbars for these layers.
    DepthwiseConv,
}

impl LayerKind {
    /// Numeric encoding used by the RL state vector (paper Table 1, row 2;
    /// depthwise reads as a convolution).
    pub fn as_state(self) -> f64 {
        match self {
            LayerKind::Conv | LayerKind::DepthwiseConv => 1.0,
            LayerKind::Fc => 0.0,
        }
    }
}

/// Geometry of one DNN layer.
///
/// All the paper's models (Eq. 4 utilization, energy counting, the RL state
/// space) are functions of this struct alone — weight *values* never matter
/// for the architecture search, which is why the reproduction can run on
/// synthetic weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Zero-based index of the layer within its model (state feature `k`).
    pub index: usize,
    /// CONV or FC (state feature `t`).
    pub kind: LayerKind,
    /// Input channels `Cin` (for FC: number of input neurons).
    pub in_channels: usize,
    /// Output channels `Cout` (for FC: number of output neurons).
    pub out_channels: usize,
    /// Kernel side length `k` (1 for FC).
    pub kernel: usize,
    /// Convolution stride `s` (1 for FC).
    pub stride: usize,
    /// Symmetric zero padding applied to the input feature map.
    pub padding: usize,
    /// Input feature-map side length (state feature `ins`; 1 for FC).
    pub in_size: usize,
}

impl Layer {
    /// Construct a convolutional layer.
    pub fn conv(
        index: usize,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_size: usize,
    ) -> Self {
        assert!(kernel >= 1 && stride >= 1 && in_size >= 1);
        assert!(in_channels >= 1 && out_channels >= 1);
        assert!(
            in_size + 2 * padding >= kernel,
            "kernel {kernel} larger than padded input {in_size}+2*{padding}"
        );
        Layer {
            index,
            kind: LayerKind::Conv,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            in_size,
        }
    }

    /// Construct a depthwise convolution over `channels` channels.
    pub fn depthwise(
        index: usize,
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_size: usize,
    ) -> Self {
        let mut l = Self::conv(index, channels, channels, kernel, stride, padding, in_size);
        l.kind = LayerKind::DepthwiseConv;
        l
    }

    /// Construct a fully-connected layer (normalized to a 1×1 conv).
    pub fn fc(index: usize, in_neurons: usize, out_neurons: usize) -> Self {
        assert!(in_neurons >= 1 && out_neurons >= 1);
        Layer {
            index,
            kind: LayerKind::Fc,
            in_channels: in_neurons,
            out_channels: out_neurons,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_size: 1,
        }
    }

    /// `k²` — the number of elements in one 2-D kernel slice (state feature
    /// `ks`). This is the quantity crossbar rows must be a multiple of for
    /// perfect packing, which motivates the paper's rectangle crossbars.
    pub fn kernel_elems(&self) -> usize {
        self.kernel * self.kernel
    }

    /// Height of the unfolded weight matrix: `Cin · k²` (paper Fig. 7).
    pub fn weight_rows(&self) -> usize {
        self.in_channels * self.kernel_elems()
    }

    /// Width of the unfolded weight matrix: `Cout` (paper Fig. 7).
    pub fn weight_cols(&self) -> usize {
        self.out_channels
    }

    /// Total number of weights `w` in the layer (state feature `w`).
    /// Depthwise layers hold one `k²` kernel per channel, not a dense
    /// `Cin·k² × Cout` matrix.
    pub fn num_weights(&self) -> usize {
        match self.kind {
            LayerKind::DepthwiseConv => self.in_channels * self.kernel_elems(),
            _ => self.weight_rows() * self.weight_cols(),
        }
    }

    /// Shape of the layer's stored kernel matrix: dense layers unfold to
    /// `(Cin·k², Cout)` (paper Fig. 7); depthwise layers store one kernel
    /// per channel as a `(k², channels)` matrix (column `c` = channel
    /// `c`'s kernel).
    pub fn kernel_matrix_shape(&self) -> (usize, usize) {
        match self.kind {
            LayerKind::DepthwiseConv => (self.kernel_elems(), self.in_channels),
            _ => (self.weight_rows(), self.weight_cols()),
        }
    }

    /// Output feature-map side length.
    pub fn out_size(&self) -> usize {
        (self.in_size + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of input-vector presentations one inference pushes through the
    /// layer's crossbars: each output pixel is one MVM. For FC layers this
    /// is 1.
    pub fn presentations(&self) -> usize {
        let o = self.out_size();
        o * o
    }

    /// Multiply-accumulate operations per inference, used for sanity checks
    /// and reporting.
    pub fn macs(&self) -> usize {
        self.presentations() * self.num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_geometry_matches_paper_fig2_layer1() {
        // Paper Fig. 2(a): Cin=3, Cout=4, kernel 3×3 → four 3×3×3 kernel
        // matrices, i.e. a 27-row × 4-column unfolded weight matrix.
        let l = Layer::conv(0, 3, 4, 3, 1, 1, 32);
        assert_eq!(l.kernel_elems(), 9);
        assert_eq!(l.weight_rows(), 27);
        assert_eq!(l.weight_cols(), 4);
        assert_eq!(l.num_weights(), 108);
    }

    #[test]
    fn conv_geometry_matches_paper_fig2_layer2() {
        // Paper Fig. 2(b): Cin=32, Cout=20, kernel 1×1 → 32×20 weight matrix.
        let l = Layer::conv(1, 32, 20, 1, 1, 0, 32);
        assert_eq!(l.weight_rows(), 32);
        assert_eq!(l.weight_cols(), 20);
    }

    #[test]
    fn fc_is_normalized_to_1x1_conv() {
        let l = Layer::fc(15, 4096, 1000);
        assert_eq!(l.kind, LayerKind::Fc);
        assert_eq!(l.kernel, 1);
        assert_eq!(l.stride, 1);
        assert_eq!(l.in_size, 1);
        assert_eq!(l.weight_rows(), 4096);
        assert_eq!(l.weight_cols(), 1000);
        assert_eq!(l.presentations(), 1);
    }

    #[test]
    fn out_size_same_padding() {
        // 3×3 stride-1 pad-1 "same" convolution preserves the spatial size.
        let l = Layer::conv(0, 3, 64, 3, 1, 1, 32);
        assert_eq!(l.out_size(), 32);
        assert_eq!(l.presentations(), 1024);
    }

    #[test]
    fn out_size_strided() {
        // ResNet stem: 7×7 stride-2 pad-3 on 224 → 112.
        let l = Layer::conv(0, 3, 64, 7, 2, 3, 224);
        assert_eq!(l.out_size(), 112);
    }

    #[test]
    fn macs_counts_every_output_pixel() {
        let l = Layer::conv(0, 2, 2, 3, 1, 1, 4);
        assert_eq!(l.macs(), 16 * 2 * 9 * 2);
    }

    #[test]
    fn kind_state_encoding() {
        assert_eq!(LayerKind::Conv.as_state(), 1.0);
        assert_eq!(LayerKind::Fc.as_state(), 0.0);
        assert_eq!(LayerKind::DepthwiseConv.as_state(), 1.0);
    }

    #[test]
    fn depthwise_geometry() {
        let l = Layer::depthwise(3, 64, 3, 1, 1, 14);
        assert_eq!(l.kind, LayerKind::DepthwiseConv);
        assert_eq!(l.in_channels, 64);
        assert_eq!(l.out_channels, 64);
        // One 3×3 kernel per channel, not 64·9·64 dense weights.
        assert_eq!(l.num_weights(), 64 * 9);
        assert_eq!(l.out_size(), 14);
    }

    #[test]
    #[should_panic]
    fn kernel_larger_than_input_panics() {
        let _ = Layer::conv(0, 3, 4, 5, 1, 0, 3);
    }
}
