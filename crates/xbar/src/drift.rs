//! Temporal conductance drift: degradation as a *trajectory* over
//! simulated hours instead of a point sample (DESIGN.md §12).
//!
//! ReRAM cells age: programmed conductances decay toward the high-
//! resistance state (power-law resistance growth, the classic
//! `R(t) = R₀ · (1 + t/t₀)^ν` drift law), the lognormal spread around the
//! nominal corners widens as cells wander, and a slowly accumulating
//! fraction of cells sticks outright — a *soft* process (distribution
//! shift) riding on top of a *hard* one (stuck-at conversion).
//!
//! [`DriftModel`] packages both under one seed and one time axis:
//!
//! - [`DriftModel::variation_at`] returns the [`VariationModel`] the
//!   device population obeys at hour `t` — nominal resistances scaled by
//!   the drift factor, deviations widened linearly. At `t = 0` it is the
//!   base model *bit for bit*, so zero-drift trajectories reproduce the
//!   static-variation results exactly.
//! - [`DriftModel::rates_at`] converts the stuck-at / ADC-aging hazards
//!   into cumulative [`FaultRates`] via `p(t) = 1 − e^{−λt}` — zero at
//!   `t = 0` and monotone in `t`.
//! - [`DriftModel::snapshot_at`] samples the [`FaultMap`] at time `t`.
//!   Because [`FaultMap::sample`] decides each component by a roll that is
//!   independent of the rate, the stuck sets are *nested in time*: a
//!   crossbar dead at hour 100 is dead at every later hour, for free.
//!
//! Recalibration (the accel crate's extended repair cascade) exploits the
//! soft half: readout references derived for the *base* distribution
//! misjudge drifted currents, while references re-derived against
//! [`DriftModel::variation_at`] restore accuracy — see
//! [`VariedCrossbar::sample_with_reference`](crate::variation::VariedCrossbar::sample_with_reference).

use crate::fault::{FaultMap, FaultRates};
use crate::variation::VariationModel;
use serde::{Deserialize, Serialize};

/// A seeded temporal degradation model: lognormal conductance drift plus
/// stuck-at conversion over simulated hours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    /// Device population at `t = 0`.
    pub base: VariationModel,
    /// Power-law drift exponent `ν`: nominal resistances grow as
    /// `(1 + t/t₀)^ν` with `t₀ = 1 h`. `0` disables resistance drift.
    pub nu: f64,
    /// Linear widening of both lognormal deviations per hour:
    /// `dev(t) = dev₀ · (1 + rate · t)`.
    pub dev_growth_per_hour: f64,
    /// Stuck-at (dead crossbar) hazard rate, 1/h.
    pub stuck_per_hour: f64,
    /// ADC-aging (resolution-loss) hazard rate, 1/h.
    pub adc_per_hour: f64,
    /// Resolution bits an aged ADC loses.
    pub adc_bits_lost: u32,
    /// Seed for [`DriftModel::snapshot_at`] fault maps.
    pub seed: u64,
}

impl DriftModel {
    /// The nominal drift corner on the HyperMetric base model: mild
    /// power-law resistance growth, slow deviation widening, and hazards
    /// that convert a few percent of components over a 1000-hour life.
    pub fn nominal() -> Self {
        DriftModel {
            base: VariationModel::hypermetric(),
            nu: 0.05,
            dev_growth_per_hour: 5e-6,
            stuck_per_hour: 2e-6,
            adc_per_hour: 4e-6,
            adc_bits_lost: 2,
            seed: 0xD81F,
        }
    }

    /// The slow corner: every drift mechanism at ¼ nominal strength.
    pub fn slow() -> Self {
        Self::nominal().with_rate_scale(0.25)
    }

    /// The fast corner: every drift mechanism at 4× nominal strength.
    pub fn fast() -> Self {
        Self::nominal().with_rate_scale(4.0)
    }

    /// No drift at all: the population at hour 10⁶ is the base model.
    pub fn ideal() -> Self {
        Self::nominal().with_rate_scale(0.0)
    }

    /// This corner with every drift mechanism scaled by `k` (the
    /// campaign's drift-rate axis). `k = 0` freezes time entirely.
    pub fn with_rate_scale(self, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite(), "bad drift scale {k}");
        DriftModel {
            nu: self.nu * k,
            dev_growth_per_hour: self.dev_growth_per_hour * k,
            stuck_per_hour: self.stuck_per_hour * k,
            adc_per_hour: self.adc_per_hour * k,
            ..self
        }
    }

    /// True when no mechanism drifts — every snapshot equals `t = 0`.
    pub fn is_static(&self) -> bool {
        self.nu == 0.0
            && self.dev_growth_per_hour == 0.0
            && self.stuck_per_hour == 0.0
            && self.adc_per_hour == 0.0
    }

    fn validate_t(t_hours: f64) {
        assert!(
            t_hours >= 0.0 && t_hours.is_finite(),
            "bad drift time {t_hours}"
        );
    }

    /// The variation model the surviving device population obeys at hour
    /// `t`. At `t = 0` this is `self.base` bit for bit; both nominal
    /// resistances scale by the same drift factor (the LRS/HRS ordering
    /// and ratio are preserved), and both deviations widen linearly.
    pub fn variation_at(&self, t_hours: f64) -> VariationModel {
        Self::validate_t(t_hours);
        let growth = (1.0 + t_hours).powf(self.nu);
        let widen = 1.0 + self.dev_growth_per_hour * t_hours;
        VariationModel {
            r_on: self.base.r_on * growth,
            r_off: self.base.r_off * growth,
            dev_on: self.base.dev_on * widen,
            dev_off: self.base.dev_off * widen,
            ..self.base
        }
    }

    /// Cumulative hard-fault probabilities at hour `t`:
    /// `p = 1 − e^{−λt}`, zero at `t = 0` and monotone in `t`.
    pub fn rates_at(&self, t_hours: f64) -> FaultRates {
        Self::validate_t(t_hours);
        FaultRates {
            dead_xbar: 1.0 - (-self.stuck_per_hour * t_hours).exp(),
            degraded_adc: 1.0 - (-self.adc_per_hour * t_hours).exp(),
            adc_bits_lost: self.adc_bits_lost,
        }
    }

    /// The hard-fault snapshot at hour `t` for a tile array where tile
    /// `i` holds `capacities[i]` primaries and `spares_per_tile` spares.
    /// Snapshots are nested in time: rates are monotone in `t` and the
    /// per-component rolls are rate-independent, so the dead set at `t₁`
    /// is a subset of the dead set at every `t₂ ≥ t₁`.
    pub fn snapshot_at(&self, t_hours: f64, capacities: &[u32], spares_per_tile: u32) -> FaultMap {
        FaultMap::sample(
            self.seed,
            self.rates_at(t_hours),
            capacities,
            spares_per_tile,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ComponentHealth;

    #[test]
    fn time_zero_reproduces_the_base_model_bit_for_bit() {
        for m in [
            DriftModel::slow(),
            DriftModel::nominal(),
            DriftModel::fast(),
        ] {
            assert_eq!(m.variation_at(0.0), m.base);
            let r0 = m.rates_at(0.0);
            assert_eq!(r0.dead_xbar, 0.0);
            assert_eq!(r0.degraded_adc, 0.0);
            assert!(r0.is_ideal());
            assert!(m.snapshot_at(0.0, &[4; 8], 1).is_ideal());
        }
    }

    #[test]
    fn drift_is_monotone_in_time() {
        let m = DriftModel::nominal();
        let mut prev_r = 0.0;
        let mut prev_dead = -1.0;
        for t in [0.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let v = m.variation_at(t);
            let r = m.rates_at(t);
            assert!(v.r_on > prev_r, "r_on must grow with t");
            assert!(
                v.r_off / v.r_on == m.base.r_off / m.base.r_on || t == 0.0 || {
                    // Ratio is preserved up to f64 rounding.
                    ((v.r_off / v.r_on) / (m.base.r_off / m.base.r_on) - 1.0).abs() < 1e-12
                }
            );
            assert!(v.dev_on >= m.base.dev_on && v.dev_off >= m.base.dev_off);
            assert!(r.dead_xbar > prev_dead);
            assert!((0.0..1.0).contains(&r.dead_xbar));
            prev_r = v.r_on;
            prev_dead = r.dead_xbar;
        }
    }

    #[test]
    fn snapshots_are_nested_in_time() {
        let m = DriftModel::fast();
        let caps = vec![4u32; 64];
        let early = m.snapshot_at(500.0, &caps, 2);
        let late = m.snapshot_at(5000.0, &caps, 2);
        let mut grew = false;
        for (e, l) in early.tiles.iter().zip(&late.tiles) {
            for (a, b) in e
                .slots
                .iter()
                .zip(&l.slots)
                .chain(e.spares.iter().zip(&l.spares))
            {
                if *a == ComponentHealth::Dead {
                    assert_eq!(*b, ComponentHealth::Dead, "dead set must be nested");
                }
            }
        }
        grew |= late.dead_slots() > early.dead_slots();
        assert!(grew, "the fast corner must accumulate faults by hour 5000");
    }

    #[test]
    fn corners_order_by_severity() {
        let t = 1000.0;
        let slow = DriftModel::slow().rates_at(t).dead_xbar;
        let nominal = DriftModel::nominal().rates_at(t).dead_xbar;
        let fast = DriftModel::fast().rates_at(t).dead_xbar;
        assert!(slow < nominal && nominal < fast);
        assert!(
            DriftModel::slow().variation_at(t).dev_on < DriftModel::fast().variation_at(t).dev_on
        );
    }

    #[test]
    fn static_model_never_moves() {
        let m = DriftModel::ideal();
        assert!(m.is_static());
        assert_eq!(m.variation_at(1e6), m.base);
        assert_eq!(m.rates_at(1e6).dead_xbar, 0.0);
        assert!(m.snapshot_at(1e6, &[8; 16], 1).is_ideal());
    }

    #[test]
    fn rate_scale_is_deterministic_and_proportional() {
        let m = DriftModel::nominal().with_rate_scale(2.0);
        assert_eq!(m.nu, DriftModel::nominal().nu * 2.0);
        assert_eq!(m.seed, DriftModel::nominal().seed);
        let a = m.snapshot_at(100.0, &[4; 8], 1);
        let b = m.snapshot_at(100.0, &[4; 8], 1);
        assert_eq!(a, b);
    }
}
