//! Crossbar programming (weight-write) cost and endurance model.
//!
//! The paper's flow programs weights once and then reuses the
//! configuration for many inferences (§4.5). Programming is not free on
//! real ReRAM: SET/RESET pulses are orders of magnitude more expensive
//! than reads and cells endure a bounded number of writes. This module
//! (extension, DESIGN.md §6) quantifies the one-time deployment cost of a
//! mapping and how many redeployments a device survives — which matters
//! when tile sharing remaps layers (Algorithm 1 moves a tile's occupants)
//! or when several models rotate through one accelerator.

use crate::cost::CostParams;
use crate::utilization::Footprint;
use serde::{Deserialize, Serialize};

/// Write-path parameters (typical HfO₂ ReRAM ballpark).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteParams {
    /// Energy per cell SET/RESET pulse [nJ].
    pub e_write: f64,
    /// Write pulse duration per row [ns] (cells in a row program in
    /// parallel; rows are serialized per crossbar; crossbars program in
    /// parallel).
    pub t_write_row: f64,
    /// Writes a cell endures before wear-out.
    pub endurance: u64,
}

impl Default for WriteParams {
    fn default() -> Self {
        WriteParams {
            e_write: 1.0e-2,
            t_write_row: 100.0,
            endurance: 1_000_000,
        }
    }
}

/// One-time programming cost of a layer mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramCost {
    /// Physical cell writes (weight-holding cells × slices).
    pub cell_writes: u64,
    /// Programming energy [nJ].
    pub energy_nj: f64,
    /// Programming latency [ns] (rows serialized per crossbar, crossbars
    /// in parallel ⇒ bounded by the crossbar height).
    pub latency_ns: f64,
}

impl ProgramCost {
    /// Sum two costs (parallel-programmed units: latency is the max).
    pub fn merge(&self, other: &ProgramCost) -> ProgramCost {
        ProgramCost {
            cell_writes: self.cell_writes + other.cell_writes,
            energy_nj: self.energy_nj + other.energy_nj,
            latency_ns: self.latency_ns.max(other.latency_ns),
        }
    }
}

/// Programming cost of one layer's footprint.
pub fn layer_program_cost(fp: &Footprint, p: &CostParams, w: &WriteParams) -> ProgramCost {
    let writes = fp.used_cells * p.slices() as u64;
    ProgramCost {
        cell_writes: writes,
        energy_nj: writes as f64 * w.e_write,
        latency_ns: fp.shape.rows as f64 * w.t_write_row,
    }
}

/// Number of full redeployments (complete weight rewrites) the device
/// survives.
pub fn redeployments_until_wearout(w: &WriteParams) -> u64 {
    w.endurance
}

/// Inferences per deployment after which programming energy amortizes
/// below `fraction` of the per-inference energy.
pub fn amortization_inferences(
    program_energy_nj: f64,
    inference_energy_nj: f64,
    fraction: f64,
) -> u64 {
    assert!(fraction > 0.0 && inference_energy_nj > 0.0);
    (program_energy_nj / (inference_energy_nj * fraction)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::XbarShape;
    use crate::utilization::footprint;
    use autohet_dnn::Layer;

    fn fp() -> Footprint {
        footprint(&Layer::conv(0, 12, 128, 3, 1, 1, 16), XbarShape::square(64))
    }

    #[test]
    fn writes_count_physical_cells() {
        let p = CostParams::default();
        let w = WriteParams::default();
        let c = layer_program_cost(&fp(), &p, &w);
        // 12·9·128 weight cells × 8 slices.
        assert_eq!(c.cell_writes, 12 * 9 * 128 * 8);
        assert!((c.energy_nj - c.cell_writes as f64 * w.e_write).abs() < 1e-9);
    }

    #[test]
    fn latency_is_row_serialized_per_crossbar() {
        let p = CostParams::default();
        let w = WriteParams::default();
        let c = layer_program_cost(&fp(), &p, &w);
        assert!((c.latency_ns - 64.0 * w.t_write_row).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_energy_and_maxes_latency() {
        let a = ProgramCost {
            cell_writes: 10,
            energy_nj: 1.0,
            latency_ns: 5.0,
        };
        let b = ProgramCost {
            cell_writes: 20,
            energy_nj: 2.0,
            latency_ns: 3.0,
        };
        let m = a.merge(&b);
        assert_eq!(m.cell_writes, 30);
        assert_eq!(m.energy_nj, 3.0);
        assert_eq!(m.latency_ns, 5.0);
    }

    #[test]
    fn programming_amortizes_quickly() {
        // Programming VGG16-scale weights (~2e7 cell writes × 1e-2 nJ =
        // 2e5 nJ) against a ~2e6 nJ inference: amortized below 1% within
        // a handful of inferences.
        let n = amortization_inferences(2.0e5, 2.0e6, 0.01);
        assert_eq!(n, 10);
        assert_eq!(amortization_inferences(0.0, 1.0, 0.5), 0);
    }

    #[test]
    fn fewer_slices_mean_fewer_writes() {
        let mut p = CostParams::default();
        let w = WriteParams::default();
        let eight = layer_program_cost(&fp(), &p, &w).cell_writes;
        p.cell_bits = 4; // 2 slices
        let two = layer_program_cost(&fp(), &p, &w).cell_writes;
        assert_eq!(eight, 4 * two);
    }

    #[test]
    fn endurance_bounds_redeployments() {
        let w = WriteParams {
            endurance: 1000,
            ..WriteParams::default()
        };
        assert_eq!(redeployments_until_wearout(&w), 1000);
    }
}
