//! Behavior-level hardware cost parameters.
//!
//! The paper runs on MNSIM with 8-bit weights on 1-bit cells (eight
//! physical crossbar "slices" ganged per PE to hold one logical weight
//! plane), 1-bit DACs, and 10-bit ADCs sized to cover the tallest candidate
//! crossbar (§4.1). MNSIM itself is an analytical model: counts of
//! component activations times per-component constants, plus static power
//! times runtime. The constants below are ISAAC/MNSIM-inspired defaults
//! (see DESIGN.md §4); every experiment in the paper depends on the
//! *counting structure*, not the absolute constants, and all of them are
//! configurable.
//!
//! Units: energy nJ, power nW, time ns, length µm (area µm²).

use serde::{Deserialize, Serialize};

/// All cost-model constants plus the bit-width configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Weight precision in bits (paper: 8).
    pub weight_bits: u32,
    /// Memristor cell precision in bits (paper: 1).
    pub cell_bits: u32,
    /// Input (activation) precision in bits, streamed bit-serially through
    /// 1-bit DACs (paper: 8).
    pub input_bits: u32,
    /// ADC resolution (paper: 10, enough for 576-row bitline sums).
    pub adc_bits: u32,

    /// ADC dynamic energy per conversion at `adc_ref_bits` resolution [nJ].
    pub e_adc: f64,
    /// Reference resolution for `e_adc`/`a_adc`/`p_adc` (they scale ×2 per
    /// extra bit).
    pub adc_ref_bits: u32,
    /// DAC dynamic energy per 1-bit conversion [nJ].
    pub e_dac: f64,
    /// Energy per active cell per compute cycle [nJ].
    pub e_cell: f64,
    /// Shift-and-add energy per ADC sample merged [nJ].
    pub e_shift_add: f64,
    /// Buffer energy per byte moved in/out of a tile [nJ].
    pub e_buffer: f64,
    /// Input activity factor in `(0, 1]`: the fraction of bit-serial
    /// cycles whose input bit-plane is non-zero. The functional crossbar
    /// skips all-zero planes entirely (`crate::crossbar`); this scales the
    /// dynamic (not static) energy terms to match. 1.0 = worst case, the
    /// conservative default the paper's counting corresponds to.
    pub input_activity: f64,

    /// ADC static power at `adc_ref_bits` [nW]. Provisioned-ADC leakage is
    /// the dominant energy term for small-crossbar accelerators, which is
    /// what makes large crossbars energy-efficient (paper §2.2.3).
    pub p_adc: f64,
    /// Wordline driver static power per row [nW].
    pub p_driver: f64,
    /// Cell-array static power per cell [nW].
    pub p_cell: f64,

    /// ADC area at `adc_ref_bits` [µm²].
    pub a_adc: f64,
    /// Cell area [µm²].
    pub a_cell: f64,
    /// Wordline driver area per row [µm²].
    pub a_driver: f64,
    /// Fixed per-crossbar overhead (sense infrastructure) [µm²].
    pub a_xb_fixed: f64,
    /// Per-tile overhead: buffers, pooling module, control [µm²].
    pub a_tile: f64,

    /// Base compute-cycle time [ns].
    pub t_cycle_base: f64,
    /// Extra cycle time per 32 crossbar rows (wordline RC) [ns].
    pub t_cycle_per_row32: f64,
    /// Partial-sum adder-tree time per stage [ns].
    pub t_adder_stage: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            weight_bits: 8,
            cell_bits: 1,
            input_bits: 8,
            adc_bits: 10,
            e_adc: 2.0e-3,
            adc_ref_bits: 10,
            e_dac: 2.0e-6,
            e_cell: 5.0e-7,
            e_shift_add: 5.0e-5,
            e_buffer: 1.0e-3,
            input_activity: 1.0,
            p_adc: 2.0e3, // 2 µW per 10-bit ADC
            p_driver: 10.0,
            p_cell: 0.001,
            a_adc: 3.0e3,
            a_cell: 0.05,
            a_driver: 1.0,
            a_xb_fixed: 500.0,
            a_tile: 2.0e4,
            t_cycle_base: 98.0,
            t_cycle_per_row32: 1.4,
            t_adder_stage: 2.0,
        }
    }
}

impl CostParams {
    /// Physical crossbar slices per logical crossbar: one per cell-worth of
    /// weight bits (paper: 8/1 = 8, "we group eight crossbars in each PE").
    pub fn slices(&self) -> u32 {
        debug_assert_eq!(self.weight_bits % self.cell_bits, 0);
        self.weight_bits / self.cell_bits
    }

    /// Resolution scaling factor ×2 per bit above the reference.
    fn adc_scale(&self) -> f64 {
        let d = self.adc_bits as i32 - self.adc_ref_bits as i32;
        2.0_f64.powi(d)
    }

    /// ADC dynamic energy per conversion at the configured resolution [nJ].
    pub fn adc_energy(&self) -> f64 {
        self.e_adc * self.adc_scale()
    }

    /// ADC static power at the configured resolution [nW].
    pub fn adc_power(&self) -> f64 {
        self.p_adc * self.adc_scale()
    }

    /// ADC area at the configured resolution [µm²].
    pub fn adc_area(&self) -> f64 {
        self.a_adc * self.adc_scale()
    }

    /// Largest bitline sum a conversion can represent without clipping.
    pub fn adc_max_level(&self) -> i64 {
        (1_i64 << self.adc_bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_bit_widths() {
        let p = CostParams::default();
        assert_eq!(p.weight_bits, 8);
        assert_eq!(p.cell_bits, 1);
        assert_eq!(p.input_bits, 8);
        assert_eq!(p.adc_bits, 10);
        assert_eq!(p.slices(), 8);
    }

    #[test]
    fn ten_bit_adc_covers_tallest_candidate() {
        // §4.1: "We set the ADC revolution to 10-bit to support crossbars
        // of all heterogeneous sizes" — the tallest candidate is 576 rows.
        let p = CostParams::default();
        assert!(p.adc_max_level() >= 576);
        assert!(p.adc_max_level() < 2 * 576 * 2); // and not absurdly larger
    }

    #[test]
    fn adc_costs_scale_with_resolution() {
        let mut p = CostParams::default();
        let (e0, w0, a0) = (p.adc_energy(), p.adc_power(), p.adc_area());
        p.adc_bits += 2;
        assert!((p.adc_energy() / e0 - 4.0).abs() < 1e-12);
        assert!((p.adc_power() / w0 - 4.0).abs() < 1e-12);
        assert!((p.adc_area() / a0 - 4.0).abs() < 1e-12);
        p.adc_bits -= 3;
        assert!(p.adc_energy() < e0);
    }
}
