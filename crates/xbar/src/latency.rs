//! Per-layer inference latency.
//!
//! Bit-serial in-situ MVM: each output pixel (presentation) takes
//! `input_bits` compute cycles. A cycle's critical path is the wordline
//! charge (grows with crossbar height) plus the partial-sum adder tree
//! (grows logarithmically with the number of crossbar-grid rows whose
//! results must be merged). Layers execute back-to-back; total model
//! latency is the sum — consistent with the paper's Table 5 where all
//! accelerators land within ~1.3× of each other and the smallest crossbar
//! is (slightly) fastest.

use crate::cost::CostParams;
use crate::utilization::Footprint;
use autohet_dnn::Layer;

/// Duration of one compute cycle for crossbars of this footprint [ns].
pub fn cycle_time_ns(fp: &Footprint, p: &CostParams) -> f64 {
    let tree_stages = (fp.xb_rows as f64).log2().ceil().max(0.0);
    p.t_cycle_base
        + p.t_cycle_per_row32 * fp.shape.rows as f64 / 32.0
        + p.t_adder_stage * tree_stages
}

/// Latency of one inference through `layer` mapped as `fp` [ns].
pub fn layer_latency_ns(layer: &Layer, fp: &Footprint, p: &CostParams) -> f64 {
    let cycles = layer.presentations() as f64 * p.input_bits as f64;
    cycles * cycle_time_ns(fp, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::XbarShape;
    use crate::utilization::footprint;
    use autohet_dnn::Layer;

    #[test]
    fn cycle_time_grows_mildly_with_rows() {
        let p = CostParams::default();
        let l = Layer::conv(0, 64, 64, 3, 1, 1, 16);
        let t32 = cycle_time_ns(&footprint(&l, XbarShape::square(32)), &p);
        let t512 = cycle_time_ns(&footprint(&l, XbarShape::square(512)), &p);
        // Mild: within ~1.3×, per the paper's Table 5 spread.
        assert!(t512 / t32 < 1.35, "ratio {}", t512 / t32);
        assert!(t512 > 0.0 && t32 > 0.0);
    }

    #[test]
    fn single_grid_row_has_no_tree_delay() {
        let p = CostParams::default();
        let l = Layer::conv(0, 3, 8, 3, 1, 1, 8); // fits one crossbar row
        let fp = footprint(&l, XbarShape::square(64));
        assert_eq!(fp.xb_rows, 1);
        let expect = p.t_cycle_base + p.t_cycle_per_row32 * 2.0;
        assert!((cycle_time_ns(&fp, &p) - expect).abs() < 1e-9);
    }

    #[test]
    fn latency_scales_with_presentations_and_bits() {
        let mut p = CostParams::default();
        let l = Layer::conv(0, 16, 16, 3, 1, 1, 8);
        let fp = footprint(&l, XbarShape::square(64));
        let t8 = layer_latency_ns(&l, &fp, &p);
        p.input_bits = 4;
        let t4 = layer_latency_ns(&l, &fp, &p);
        assert!((t8 / t4 - 2.0).abs() < 1e-9);
        assert!(
            (t8 / (l.presentations() as f64) - 8.0 * cycle_time_ns(&fp, &CostParams::default()))
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn fc_layer_is_one_presentation() {
        let p = CostParams::default();
        let l = Layer::fc(0, 512, 4096);
        let fp = footprint(&l, XbarShape::square(512));
        let t = layer_latency_ns(&l, &fp, &p);
        assert!((t - p.input_bits as f64 * cycle_time_ns(&fp, &p)).abs() < 1e-9);
    }
}
