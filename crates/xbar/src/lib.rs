//! ReRAM crossbar substrate for the AutoHet reproduction.
//!
//! This crate is the MNSIM-equivalent behavior-level model the paper builds
//! on (§4.1 "We implement AutoHet based on a ReRAM simulator, MNSIM"),
//! rebuilt from scratch in Rust:
//!
//! - [`geometry`]: crossbar shapes — the paper's square candidates
//!   (32²…512²) and rectangle candidates with heights that are multiples of
//!   9 (36×32 … 576×512, §3.3).
//! - [`utilization`]: the paper's Eq. 4 — exact floor/ceil counting of how a
//!   layer's unfolded weight matrix tiles onto an `r × c` crossbar array
//!   under the kernel-per-column mapping of Fig. 7.
//! - [`cost`], [`energy`], [`area`], [`latency`]: behavior-level component
//!   cost models (ADC/DAC/cell/shift-add/buffer/leakage), ISAAC/MNSIM-style
//!   counting; constants documented in DESIGN.md §4.
//! - [`crossbar`] (+ [`adc`], [`dac`]): a *functional* analog crossbar that
//!   really computes: 8-bit weights bit-sliced onto eight 1-bit cell planes
//!   (§4.1 "we group eight crossbars in each PE to represent one weight"),
//!   bit-serial 1-bit-DAC inputs, 10-bit ADC sampling, shift-and-add
//!   recombination, offset-encoded signed weights. It reproduces the exact
//!   integer MVM whenever bitline sums stay inside ADC range.
//! - [`noise`]: beyond-paper non-idealities (conductance variation,
//!   stuck-at faults) for robustness studies.
//! - [`variation`]: stochastic lognormal Ron/Roff device variation with
//!   operation-unit readout and a packed fast path (DESIGN.md §11) — the
//!   device model behind the accuracy-under-noise objective.
//! - [`fault`]: beyond-paper component-level hard faults (dead crossbars,
//!   degraded ADCs, spare crossbars) — the seeded [`fault::FaultMap`] the
//!   accel crate's repair machinery consumes.
//! - [`drift`]: temporal conductance drift (DESIGN.md §12) — a seeded
//!   [`drift::DriftModel`] turning variation + hard faults into a
//!   trajectory over simulated hours, with nested-in-time fault
//!   snapshots and per-epoch variation models for recalibration.

pub mod adc;
pub mod area;
pub mod cost;
pub mod crossbar;
pub mod dac;
pub mod drift;
pub mod energy;
pub mod fault;
pub mod geometry;
pub mod kernels;
pub mod latency;
pub mod noise;
pub mod program_cost;
pub mod utilization;
pub mod variation;

pub use adc::Adc;
pub use cost::CostParams;
pub use crossbar::Crossbar;
pub use drift::DriftModel;
pub use energy::LayerEnergy;
pub use fault::{ComponentHealth, FaultMap, FaultRates};
pub use geometry::XbarShape;
pub use kernels::{PackedInput, PackedWeights, XbarScratch};
pub use utilization::Footprint;
pub use variation::{VariationModel, VariedCrossbar};
