//! Functional analog crossbar: the thing that actually computes.
//!
//! One *logical* crossbar holds an `rows × cols` block of signed integer
//! weights at `weight_bits` precision. Physically (paper §4.1) this is
//! `weight_bits / cell_bits` crossbar *slices* of 1-bit memristor cells —
//! "we group eight crossbars in each PE to represent one weight data".
//!
//! Signed weights are offset-encoded: the planes store
//! `w' = w + 2^(weight_bits-1) ∈ [0, 2^weight_bits)`, bit `b` of `w'` on
//! slice `b`. Inference is bit-serial: for input bit `t` (1-bit DACs) the
//! wordlines of every slice carry the binary plane of the inputs, each
//! bitline sums the active cells' conductances, an ADC samples every
//! bitline, and the shift-and-add unit accumulates `sample << (t + b)`.
//! Finally the digital offset unit subtracts `2^(weight_bits-1) · Σx`:
//!
//! ```text
//! Σ_t Σ_b 2^(t+b) Σ_r x_t[r]·bit_b(w'[r][j])  =  Σ_r x[r]·w'[r][j]
//! result[j] = Σ_r x[r]·w'[r][j] − 2^(wb−1)·Σ_r x[r] = Σ_r x[r]·w[r][j]
//! ```
//!
//! With an ADC wide enough for the tallest active-row count the pipeline
//! is *exact* over the integers; with a narrower ADC it saturates, and
//! with device noise the per-cycle sums are perturbed before sampling —
//! both effects are modeled faithfully.

use crate::adc::Adc;
use crate::dac;
use crate::geometry::XbarShape;
use crate::kernels::{self, PackedInput, PackedWeights, XbarScratch};
use crate::noise::NoiseModel;
use rand::Rng;
use std::cell::RefCell;

thread_local! {
    /// Per-thread MVM scratch so the allocation-free fast path is available
    /// through the plain [`Crossbar::mvm`] signature, including when one
    /// crossbar is shared across inference worker threads.
    static MVM_SCRATCH: RefCell<XbarScratch> = RefCell::new(XbarScratch::new());
}

/// A programmed logical crossbar (all its physical bit-plane slices).
///
/// ```
/// use autohet_xbar::{Adc, Crossbar, XbarShape};
///
/// // Program [[2, -3], [-1, 4]] and compute [5, 7]ᵀ through the analog
/// // pipeline: bit-serial inputs, 8 bit-plane slices, 10-bit ADCs.
/// let xb = Crossbar::program(XbarShape::square(32), &[vec![2, -3], vec![-1, 4]], 8);
/// assert_eq!(xb.mvm(&[5, 7], &Adc::new(10)), vec![3, 13]); // exact MVM
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    shape: XbarShape,
    weight_bits: u32,
    /// Bits stored per memristor cell (1 = SLC, the paper's setting; >1 =
    /// multi-level cells, fewer slices but larger bitline sums).
    cell_bits: u32,
    /// `planes[b][r * cols + c]` = conductance of slice `b`'s cell (ideal:
    /// bits `[b·cell_bits, (b+1)·cell_bits)` of the offset-encoded weight).
    planes: Vec<Vec<f64>>,
    rows_used: usize,
    cols_used: usize,
    /// Bit-packed per-column weight slices (DESIGN.md §9). `Some` while
    /// every used conductance is an exact integer level — rebuilt after
    /// every mutation, dropped when analog variation makes cells
    /// non-integral (the MVM then falls back to `f64` accumulation).
    packed: Option<PackedWeights>,
}

impl Crossbar {
    /// Program a block of signed weights (row-major `weights[r][c]`,
    /// `|w| < 2^(weight_bits-1)`) into a crossbar of `shape` with 1-bit
    /// cells (the paper's configuration). The block must fit; unused
    /// cells stay at zero conductance.
    pub fn program(shape: XbarShape, weights: &[Vec<i32>], weight_bits: u32) -> Self {
        Self::program_with_cells(shape, weights, weight_bits, 1)
    }

    /// Program with `cell_bits`-level cells: `weight_bits / cell_bits`
    /// slices, each cell holding a conductance level in
    /// `[0, 2^cell_bits)`. `cell_bits` must divide `weight_bits`.
    pub fn program_with_cells(
        shape: XbarShape,
        weights: &[Vec<i32>],
        weight_bits: u32,
        cell_bits: u32,
    ) -> Self {
        assert!((2..=16).contains(&weight_bits));
        assert!(
            cell_bits >= 1 && weight_bits % cell_bits == 0,
            "cell bits must divide weight bits"
        );
        let rows_used = weights.len();
        assert!(
            rows_used <= shape.rows as usize,
            "weights taller than crossbar"
        );
        let cols_used = weights.first().map_or(0, |r| r.len());
        assert!(
            cols_used <= shape.cols as usize,
            "weights wider than crossbar"
        );
        let offset = 1_i64 << (weight_bits - 1);
        let n_planes = (weight_bits / cell_bits) as usize;
        let level_mask = (1_u64 << cell_bits) - 1;

        let cells = shape.cells() as usize;
        let mut planes = vec![vec![0.0_f64; cells]; n_planes];
        for (r, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), cols_used, "ragged weight block");
            for (c, &w) in row.iter().enumerate() {
                let w = w as i64;
                assert!(
                    (-offset..offset).contains(&w),
                    "weight {w} out of range for {weight_bits} bits"
                );
                let enc = (w + offset) as u64;
                for (b, plane) in planes.iter_mut().enumerate() {
                    let level = (enc >> (b as u32 * cell_bits)) & level_mask;
                    plane[r * shape.cols as usize + c] = level as f64;
                }
            }
        }
        let mut xb = Crossbar {
            shape,
            weight_bits,
            cell_bits,
            planes,
            rows_used,
            cols_used,
            packed: None,
        };
        xb.repack();
        xb
    }

    /// Rebuild the bit-packed fast-path weights from the conductance
    /// planes. Call after any plane mutation; packing silently degrades to
    /// `None` (the `f64` fallback) when cells are no longer exact levels.
    fn repack(&mut self) {
        self.packed = PackedWeights::from_planes(
            &self.planes,
            self.rows_used,
            self.cols_used,
            self.shape.cols as usize,
            self.cell_bits,
        );
    }

    /// Crossbar shape.
    pub fn shape(&self) -> XbarShape {
        self.shape
    }

    /// Rows / columns actually holding weights.
    pub fn used(&self) -> (usize, usize) {
        (self.rows_used, self.cols_used)
    }

    /// Weight precision this crossbar was programmed at.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Bits stored per memristor cell (1 = SLC).
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// The conductance planes (`planes[b][r * shape.cols + c]`), for
    /// in-crate device models that resample cells from the programmed
    /// levels (see [`crate::variation`]).
    pub(crate) fn planes(&self) -> &[Vec<f64>] {
        &self.planes
    }

    /// Apply a device noise model to every programmed cell (stuck-at-one
    /// faults pin cells to the full conductance level of the cell's
    /// precision). Per-cell RNG consumption order is plane-major then
    /// row-major over the used region, so seeded noise stays reproducible.
    ///
    /// Returns `true` iff some cell left the exact-level domain, i.e. the
    /// bit-packed fast path was lost and MVMs now take the `f64` fallback.
    /// Stuck-at faults and zero effective perturbation keep every cell on
    /// an integer level; the packed planes are then rebuilt (or, when no
    /// cell moved at all, left untouched) and the call returns `false`.
    pub fn apply_noise<R: Rng>(&mut self, model: &NoiseModel, rng: &mut R) -> bool {
        if model.is_ideal() {
            return false;
        }
        let max_level = ((1_u64 << self.cell_bits) - 1) as f64;
        let cols = self.shape.cols as usize;
        let (rows_used, cols_used) = (self.rows_used, self.cols_used);
        let mut moved = false;
        for plane in &mut self.planes {
            // One chunked walk over the used window per plane instead of
            // re-slicing from flat indices on every row.
            for row in plane.chunks_mut(cols).take(rows_used) {
                for cell in &mut row[..cols_used] {
                    let perturbed = model.perturb_leveled(*cell, max_level, rng);
                    moved |= perturbed != *cell;
                    *cell = perturbed;
                }
            }
        }
        // Keep the fast path coherent: pure stuck-at faults leave integer
        // levels (repack succeeds); conductance variation drops to the
        // `f64` fallback. When nothing moved the packed planes are still
        // valid verbatim — skip the rebuild entirely.
        if moved {
            self.repack();
        }
        !self.is_bit_packed()
    }

    /// True while the bit-packed integer fast path is active (exact
    /// conductance levels — always right after programming, lost after
    /// analog variation).
    pub fn is_bit_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// One bit-serial MVM: `result[j] = Σ_r input[r] · w[r][j]` over the
    /// used columns. `input.len()` must equal the used row count; samples
    /// run through `adc` (exact when the ADC covers the active-row count).
    ///
    /// This is the bit-packed fast path (thread-local scratch, no per-call
    /// buffer allocation); it is bit-identical to [`Crossbar::mvm_scalar`]
    /// for every shape, `cell_bits`, ADC resolution and noise state.
    pub fn mvm(&self, input: &[u8], adc: &Adc) -> Vec<i64> {
        MVM_SCRATCH.with(|s| self.mvm_with_scratch(input, adc, &mut s.borrow_mut()))
    }

    /// [`Crossbar::mvm`] with a caller-managed scratch, for hot loops that
    /// want buffer reuse without the thread-local indirection.
    pub fn mvm_with_scratch(&self, input: &[u8], adc: &Adc, scratch: &mut XbarScratch) -> Vec<i64> {
        assert_eq!(input.len(), self.rows_used, "input/row mismatch");
        scratch.input.pack(input);
        let packed = std::mem::take(&mut scratch.input);
        let out = self.mvm_packed(&packed, adc, scratch);
        scratch.input = packed;
        out
    }

    /// MVM over an already-packed input (callers that push one input slice
    /// through a whole grid row of crossbars pack it once). The pack's
    /// length must equal this crossbar's used row count.
    pub fn mvm_packed(
        &self,
        input: &PackedInput,
        adc: &Adc,
        scratch: &mut XbarScratch,
    ) -> Vec<i64> {
        let mut acc = vec![0_i64; self.cols_used];
        self.mvm_packed_into(input, adc, scratch, &mut acc);
        acc
    }

    /// [`Crossbar::mvm_packed`] accumulating into a caller-provided slice
    /// (`+=` semantics — the adder tree). Grid walkers merge partial sums
    /// straight into the layer's output columns instead of allocating one
    /// partial vector per crossbar call. `acc.len()` must equal this
    /// crossbar's used column count.
    pub fn mvm_packed_into(
        &self,
        input: &PackedInput,
        adc: &Adc,
        scratch: &mut XbarScratch,
        acc: &mut [i64],
    ) {
        assert_eq!(input.len(), self.rows_used, "input/row mismatch");
        assert_eq!(acc.len(), self.cols_used, "acc/column mismatch");
        if input.nonzero_planes() != 0 {
            match &self.packed {
                Some(pw) => self.accumulate_packed(pw, input, adc, acc),
                None => self.accumulate_dense(input, adc, scratch, acc),
            }
        }
        // Digital offset correction for the signed-weight encoding.
        let offset = 1_i64 << (self.weight_bits - 1);
        let correction = offset * input.input_sum();
        for a in acc {
            *a -= correction;
        }
    }

    /// Batched MVM: one result row per input, each bit-identical to a
    /// scalar [`Crossbar::mvm_scalar`] call on that input. Inputs share
    /// one scratch, so the whole batch performs no per-call buffer
    /// allocation beyond its result rows.
    pub fn mvm_batch(&self, inputs: &[Vec<u8>], adc: &Adc) -> Vec<Vec<i64>> {
        MVM_SCRATCH.with(|s| {
            let scratch = &mut s.borrow_mut();
            inputs
                .iter()
                .map(|input| self.mvm_with_scratch(input, adc, scratch))
                .collect()
        })
    }

    /// Integer fast path: per (cycle, plane, column), the bitline sum is
    /// `cell_bits` popcounts of `wordline_mask & column_slice`. ADC
    /// samples stay on `i64` — identical to rounding the equivalent exact
    /// `f64` sum (all sums are far below 2⁵³). The inner loops walk each
    /// plane's packed columns as one contiguous slice, with dedicated
    /// single-word paths for crossbars of ≤ 64 used rows (the common
    /// square-32/64 and 36×32…72×64 candidates).
    fn accumulate_packed(
        &self,
        pw: &PackedWeights,
        input: &PackedInput,
        adc: &Adc,
        acc: &mut [i64],
    ) {
        debug_assert_eq!(pw.words(), input.words());
        let n_planes = self.planes.len();
        let words = pw.words();
        let cell_bits = self.cell_bits as usize;
        for t in 0..8u32 {
            if input.nonzero_planes() & (1 << t) == 0 {
                continue;
            }
            let wordlines = input.plane(t as usize);
            for b in 0..n_planes {
                let shift = t + b as u32 * self.cell_bits;
                let cols = pw.plane_cols(b);
                if words == 1 {
                    let wl = wordlines[0];
                    if cell_bits == 1 {
                        // SLC, ≤64 rows: one popcount per bitline.
                        for (a, &m) in acc.iter_mut().zip(cols) {
                            let sum = (wl & m).count_ones() as i64;
                            *a += adc.sample_exact(sum) << shift;
                        }
                    } else {
                        for (a, block) in acc.iter_mut().zip(cols.chunks_exact(cell_bits)) {
                            let mut sum = 0_i64;
                            for (lb, &m) in block.iter().enumerate() {
                                sum += ((wl & m).count_ones() as i64) << lb;
                            }
                            *a += adc.sample_exact(sum) << shift;
                        }
                    }
                } else {
                    for (a, block) in acc.iter_mut().zip(cols.chunks_exact(cell_bits * words)) {
                        let mut sum = 0_i64;
                        for (lb, col) in block.chunks_exact(words).enumerate() {
                            let ones: u32 = wordlines
                                .iter()
                                .zip(col)
                                .map(|(&m, &c)| (m & c).count_ones())
                                .sum();
                            sum += (ones as i64) << lb;
                        }
                        *a += adc.sample_exact(sum) << shift;
                    }
                }
            }
        }
    }

    /// `f64` fallback for non-integral (variation-noised) conductances:
    /// still skips all-zero cycles and dead words via the packed input
    /// masks, and accumulates active rows in ascending order so sums are
    /// bit-identical to the scalar reference.
    fn accumulate_dense(
        &self,
        input: &PackedInput,
        adc: &Adc,
        scratch: &mut XbarScratch,
        acc: &mut [i64],
    ) {
        let cols = self.shape.cols as usize;
        scratch.bitline.resize(self.cols_used, 0.0);
        for t in 0..8u32 {
            if input.nonzero_planes() & (1 << t) == 0 {
                continue;
            }
            let wordlines = input.plane(t as usize);
            for (b, plane) in self.planes.iter().enumerate() {
                let bitline = &mut scratch.bitline[..];
                bitline.iter_mut().for_each(|v| *v = 0.0);
                kernels::for_each_set_bit(wordlines, |r| {
                    let row = &plane[r * cols..r * cols + self.cols_used];
                    for (v, &g) in bitline.iter_mut().zip(row) {
                        *v += g;
                    }
                });
                let shift = t + b as u32 * self.cell_bits;
                for (a, &s) in acc.iter_mut().zip(bitline.iter()) {
                    *a += adc.sample(s) << shift;
                }
            }
        }
    }

    /// The retained scalar reference MVM (the pre-kernel-layer
    /// implementation, kept verbatim): allocates per (cycle, plane) and
    /// walks rows cell-by-cell. The fast paths are property-tested
    /// bit-identical against it; use it only for verification.
    pub fn mvm_scalar(&self, input: &[u8], adc: &Adc) -> Vec<i64> {
        assert_eq!(input.len(), self.rows_used, "input/row mismatch");
        let cols = self.shape.cols as usize;
        let mut acc = vec![0_i64; self.cols_used];
        for t in 0..8u32 {
            // Active wordlines this cycle.
            let plane_t = dac::bit_plane(input, t);
            if plane_t.iter().all(|&v| v == 0) {
                continue;
            }
            for (b, plane) in self.planes.iter().enumerate() {
                let mut bitline = vec![0.0_f64; self.cols_used];
                for (r, &active) in plane_t.iter().enumerate() {
                    if active == 0 {
                        continue;
                    }
                    let row = &plane[r * cols..r * cols + self.cols_used];
                    for (j, &g) in row.iter().enumerate() {
                        bitline[j] += g;
                    }
                }
                let shift = t + b as u32 * self.cell_bits;
                for (j, &s) in bitline.iter().enumerate() {
                    acc[j] += adc.sample(s) << shift;
                }
            }
        }
        // Digital offset correction for the signed-weight encoding.
        let offset = 1_i64 << (self.weight_bits - 1);
        let correction = offset * dac::input_sum(input);
        for a in &mut acc {
            *a -= correction;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::ops::mvm_i32;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_block(rng: &mut SmallRng, rows: usize, cols: usize) -> Vec<Vec<i32>> {
        (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-127..=127)).collect())
            .collect()
    }

    fn reference(weights: &[Vec<i32>], input: &[u8]) -> Vec<i64> {
        let xi: Vec<i32> = input.iter().map(|&x| x as i32).collect();
        mvm_i32(weights, &xi)
            .into_iter()
            .map(|v| v as i64)
            .collect()
    }

    #[test]
    fn exact_mvm_small_handworked() {
        // [[2, -3], [-1, 4]] · [5, 7] = [10-7, -15+28] = [3, 13]
        let w = vec![vec![2, -3], vec![-1, 4]];
        let xb = Crossbar::program(XbarShape::square(32), &w, 8);
        let y = xb.mvm(&[5, 7], &Adc::new(10));
        assert_eq!(y, vec![3, 13]);
    }

    #[test]
    fn exact_mvm_matches_integer_reference_randomized() {
        let mut rng = SmallRng::seed_from_u64(99);
        let adc = Adc::new(10);
        for _ in 0..20 {
            let rows = rng.gen_range(1..=36);
            let cols = rng.gen_range(1..=32);
            let w = random_block(&mut rng, rows, cols);
            let input: Vec<u8> = (0..rows).map(|_| rng.gen()).collect();
            let xb = Crossbar::program(XbarShape::new(36, 32), &w, 8);
            assert_eq!(xb.mvm(&input, &adc), reference(&w, &input));
        }
    }

    #[test]
    fn exact_on_tallest_candidate_with_10_bit_adc() {
        // §4.1's claim: 10-bit ADCs support all heterogeneous sizes. The
        // worst case is 576 active rows all contributing a 1 — sum 576,
        // within the 1023 range.
        let mut rng = SmallRng::seed_from_u64(3);
        let rows = 576;
        let w = random_block(&mut rng, rows, 8);
        let input: Vec<u8> = vec![255; rows];
        let xb = Crossbar::program(XbarShape::new(576, 512), &w, 8);
        assert_eq!(xb.mvm(&input, &Adc::new(10)), reference(&w, &input));
    }

    #[test]
    fn narrow_adc_saturates() {
        // 64 rows of all-ones weights with all-active inputs sum to 64 per
        // bitline per cycle — a 4-bit ADC (max 15) must clip.
        let w = vec![vec![1]; 64];
        let input = vec![255u8; 64];
        let xb = Crossbar::program(XbarShape::square(64), &w, 8);
        let exact = xb.mvm(&input, &Adc::new(10));
        let clipped = xb.mvm(&input, &Adc::new(4));
        assert_eq!(exact, reference(&w, &input));
        assert!(clipped[0] < exact[0]);
    }

    #[test]
    fn zero_input_yields_zero() {
        let w = vec![vec![13, -7, 100]; 9];
        let xb = Crossbar::program(XbarShape::square(32), &w, 8);
        assert_eq!(xb.mvm(&[0; 9], &Adc::new(10)), vec![0, 0, 0]);
    }

    #[test]
    fn unused_region_does_not_contribute() {
        let w = vec![vec![5, -5]];
        let xb = Crossbar::program(XbarShape::square(128), &w, 8);
        assert_eq!(xb.used(), (1, 2));
        assert_eq!(xb.mvm(&[10], &Adc::new(10)), vec![50, -50]);
    }

    #[test]
    fn mild_noise_is_absorbed_by_adc_rounding() {
        let mut rng = SmallRng::seed_from_u64(7);
        let w = random_block(&mut rng, 16, 8);
        let input: Vec<u8> = (0..16).map(|_| rng.gen_range(0..64)).collect();
        let mut xb = Crossbar::program(XbarShape::square(32), &w, 8);
        // With ≤16 active rows a per-cell sigma of 1% keeps every bitline
        // perturbation well under half an ADC step.
        xb.apply_noise(&NoiseModel::variation(0.001), &mut rng);
        assert_eq!(xb.mvm(&input, &Adc::new(10)), reference(&w, &input));
    }

    #[test]
    fn heavy_noise_corrupts_results() {
        let mut rng = SmallRng::seed_from_u64(8);
        let w = random_block(&mut rng, 32, 8);
        let input: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
        let mut xb = Crossbar::program(XbarShape::square(32), &w, 8);
        xb.apply_noise(
            &NoiseModel {
                conductance_sigma: 0.5,
                stuck_at_zero: 0.05,
                stuck_at_one: 0.05,
            },
            &mut rng,
        );
        assert_ne!(xb.mvm(&input, &Adc::new(10)), reference(&w, &input));
    }

    #[test]
    fn multi_level_cells_compute_the_same_mvm() {
        // 2-bit and 4-bit cells must match the 1-bit-cell (and integer)
        // result exactly while using fewer physical slices.
        let mut rng = SmallRng::seed_from_u64(21);
        let w = random_block(&mut rng, 20, 12);
        let input: Vec<u8> = (0..20).map(|_| rng.gen()).collect();
        let expect = reference(&w, &input);
        for cell_bits in [1u32, 2, 4, 8] {
            // The ADC must cover (2^cell_bits − 1) × active rows; 16 bits
            // covers every case here (10 suffices up to 4-bit cells).
            let adc = Adc::new(16);
            let xb = Crossbar::program_with_cells(XbarShape::square(32), &w, 8, cell_bits);
            assert_eq!(xb.mvm(&input, &adc), expect, "cell_bits {cell_bits}");
            if cell_bits <= 4 {
                assert_eq!(
                    xb.mvm(&input, &Adc::new(10)),
                    expect,
                    "10-bit, cell_bits {cell_bits}"
                );
            }
        }
    }

    #[test]
    fn multi_level_cells_need_wider_adcs_at_scale() {
        // 8-bit cells make bitline sums up to 255 × rows: with 64 fully
        // active rows a 10-bit ADC clips, a 16-bit one does not.
        let w = vec![vec![127]; 64];
        let input = vec![255u8; 64];
        let xb = Crossbar::program_with_cells(XbarShape::square(64), &w, 8, 8);
        let exact = xb.mvm(&input, &Adc::new(16));
        assert_eq!(exact, reference(&w, &input));
        let clipped = xb.mvm(&input, &Adc::new(10));
        assert!(clipped[0] < exact[0]);
    }

    #[test]
    fn mlc_stuck_at_one_pins_to_full_level() {
        let w = vec![vec![0]];
        let mut xb = Crossbar::program_with_cells(XbarShape::square(32), &w, 8, 4);
        let mut rng = SmallRng::seed_from_u64(30);
        xb.apply_noise(
            &NoiseModel {
                conductance_sigma: 0.0,
                stuck_at_zero: 0.0,
                stuck_at_one: 1.0,
            },
            &mut rng,
        );
        // Both 4-bit planes pinned to 15: value = 15 + 15·16 = 255 per
        // active row, offset-corrected: (255 − 128) · Σx.
        let y = xb.mvm(&[1], &Adc::new(10));
        assert_eq!(y, vec![127]);
    }

    #[test]
    fn stuck_at_noise_keeps_fast_path_and_reports_exact() {
        let mut rng = SmallRng::seed_from_u64(40);
        let w = random_block(&mut rng, 16, 8);
        let mut xb = Crossbar::program(XbarShape::square(32), &w, 8);
        assert!(xb.is_bit_packed());
        // Pure stuck-at faults pin cells to integer levels: the packed
        // fast path survives and the call reports "still exact".
        let fell_back = xb.apply_noise(
            &NoiseModel {
                conductance_sigma: 0.0,
                stuck_at_zero: 0.3,
                stuck_at_one: 0.3,
            },
            &mut rng,
        );
        assert!(!fell_back);
        assert!(xb.is_bit_packed());
    }

    #[test]
    fn noop_noise_keeps_packed_planes_alive() {
        // SA1 on an all-max block cannot move any cell; the packed planes
        // must stay alive without a rebuild and the ideal model must be a
        // pure no-op too.
        let w = vec![vec![127; 4]; 4];
        let mut xb = Crossbar::program(XbarShape::square(32), &w, 8);
        let mut rng = SmallRng::seed_from_u64(41);
        assert!(!xb.apply_noise(
            &NoiseModel {
                conductance_sigma: 0.0,
                stuck_at_zero: 0.0,
                stuck_at_one: 1.0,
            },
            &mut rng,
        ));
        assert!(xb.is_bit_packed());
        assert!(!xb.apply_noise(&NoiseModel::ideal(), &mut rng));
        assert!(xb.is_bit_packed());
        assert_eq!(xb.mvm(&[1; 4], &Adc::new(10)), vec![127 * 4; 4]);
    }

    #[test]
    fn variation_noise_reports_fallback() {
        let mut rng = SmallRng::seed_from_u64(42);
        let w = random_block(&mut rng, 16, 8);
        let mut xb = Crossbar::program(XbarShape::square(32), &w, 8);
        let fell_back = xb.apply_noise(&NoiseModel::variation(0.2), &mut rng);
        assert!(fell_back);
        assert!(!xb.is_bit_packed());
    }

    #[test]
    #[should_panic]
    fn indivisible_cell_bits_rejected() {
        let _ = Crossbar::program_with_cells(XbarShape::square(32), &[vec![0]], 8, 3);
    }

    #[test]
    #[should_panic]
    fn oversized_block_is_rejected() {
        let w = vec![vec![0; 33]; 2];
        let _ = Crossbar::program(XbarShape::square(32), &w, 8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_weight_is_rejected() {
        let w = vec![vec![200]];
        let _ = Crossbar::program(XbarShape::square(32), &w, 8);
    }
}
