//! ReRAM non-idealities (an extension beyond the paper's ideal-device
//! evaluation; see DESIGN.md §6).
//!
//! Two standard device effects are modeled at the cell level:
//! - **Conductance variation**: multiplicative Gaussian error on programmed
//!   conductances (write variability / drift).
//! - **Stuck-at faults**: cells frozen at low (SA0) or high (SA1)
//!   conductance regardless of the programmed bit.
//!
//! The functional crossbar applies these to its bit planes; the ADC's
//! round-to-nearest then either absorbs the perturbation (small sigma) or
//! produces output errors, which the robustness tests quantify.

use rand::distributions::{Distribution, StandardNormal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cell-level fault/variation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Std-dev of the multiplicative conductance error (0 = ideal).
    pub conductance_sigma: f64,
    /// Probability a cell is stuck at low conductance (reads as 0).
    pub stuck_at_zero: f64,
    /// Probability a cell is stuck at high conductance (reads as 1).
    pub stuck_at_one: f64,
}

impl NoiseModel {
    /// The ideal device: no variation, no faults.
    pub fn ideal() -> Self {
        NoiseModel {
            conductance_sigma: 0.0,
            stuck_at_zero: 0.0,
            stuck_at_one: 0.0,
        }
    }

    /// Pure conductance variation.
    pub fn variation(sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        NoiseModel {
            conductance_sigma: sigma,
            ..Self::ideal()
        }
    }

    /// True when every effect is disabled.
    pub fn is_ideal(&self) -> bool {
        self.conductance_sigma == 0.0 && self.stuck_at_zero == 0.0 && self.stuck_at_one == 0.0
    }

    /// Perturb one programmed binary-cell conductance (SA1 = full
    /// conductance 1.0). For multi-level cells use
    /// [`NoiseModel::perturb_leveled`].
    pub fn perturb<R: Rng>(&self, ideal: f64, rng: &mut R) -> f64 {
        self.perturb_leveled(ideal, 1.0, rng)
    }

    /// Perturb one programmed cell whose full-conductance level is
    /// `max_level` (e.g. 3.0 for 2-bit cells).
    pub fn perturb_leveled<R: Rng>(&self, ideal: f64, max_level: f64, rng: &mut R) -> f64 {
        let roll: f64 = rng.gen();
        if roll < self.stuck_at_zero {
            return 0.0;
        }
        if roll < self.stuck_at_zero + self.stuck_at_one {
            return max_level;
        }
        if self.conductance_sigma > 0.0 && ideal > 0.0 {
            // The vendored sampler inlines the exact Box–Muller arithmetic
            // this function used to carry, so seeded streams are unchanged.
            let z = StandardNormal.sample(rng);
            (ideal * (1.0 + self.conductance_sigma * z)).max(0.0)
        } else {
            ideal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_is_identity() {
        let m = NoiseModel::ideal();
        assert!(m.is_ideal());
        let mut rng = SmallRng::seed_from_u64(0);
        for v in [0.0, 1.0] {
            assert_eq!(m.perturb(v, &mut rng), v);
        }
    }

    #[test]
    fn variation_perturbs_ones_not_zeros() {
        let m = NoiseModel::variation(0.1);
        let mut rng = SmallRng::seed_from_u64(1);
        // Zero conductance stays zero (nothing to vary multiplicatively).
        assert_eq!(m.perturb(0.0, &mut rng), 0.0);
        let vals: Vec<f64> = (0..100).map(|_| m.perturb(1.0, &mut rng)).collect();
        assert!(vals.iter().any(|&v| (v - 1.0).abs() > 1e-6));
        assert!(vals.iter().all(|&v| v >= 0.0));
        // Mean stays near 1.
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn stuck_at_faults_hit_expected_rate() {
        let m = NoiseModel {
            conductance_sigma: 0.0,
            stuck_at_zero: 0.3,
            stuck_at_one: 0.2,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let mut zeros = 0;
        let mut ones = 0;
        for _ in 0..n {
            // Program a mid value so both fault directions are observable.
            match m.perturb(1.0, &mut rng) {
                0.0 => zeros += 1,
                1.0 => ones += 1,
                _ => unreachable!("no variation configured"),
            }
        }
        let z = zeros as f64 / n as f64;
        assert!((z - 0.3).abs() < 0.02, "SA0 rate {z}");
        // ones includes both healthy cells (ideal 1.0) and SA1 cells.
        assert_eq!(zeros + ones, n);
    }
}
