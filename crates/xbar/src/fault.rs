//! Component-level hard faults (an extension beyond the paper's
//! ideal-device evaluation; see DESIGN.md §7).
//!
//! [`noise::NoiseModel`](crate::noise::NoiseModel) perturbs individual
//! cells; this module models failures one level up, at the granularity the
//! allocator reasons about — whole logical crossbars and their peripheral
//! circuits inside a tile:
//!
//! - **Dead crossbars**: a crossbar (or its drivers) fails hard and holds
//!   no usable weights. Its slices must be remapped or their work
//!   re-serialized (`autohet-accel`'s `repair` module).
//! - **Degraded ADCs**: a column ADC loses resolution bits (aging,
//!   comparator drift). The crossbar still computes, but conversions are
//!   coarser — an accuracy liability the repair report surfaces.
//! - **Spare crossbars**: each tile may provision spare crossbars that
//!   repair can activate in place of dead primaries. Spares are sampled
//!   against the same fault process (a spare can itself be dead).
//!
//! Sampling is *seeded and nested*: each component's fate is decided by a
//! uniform roll derived by hashing `(seed, tile, slot, effect)`, and the
//! component fails iff its roll falls below the configured rate. The rolls
//! do not depend on the rates, so for a fixed seed the fault set at rate
//! `r₁ ≤ r₂` is a subset of the fault set at `r₂` — fault-campaign sweeps
//! are monotone by construction, not merely in expectation.

use serde::{Deserialize, Serialize};

/// Component-level fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a logical crossbar (primary or spare) is dead.
    pub dead_xbar: f64,
    /// Probability a surviving crossbar's ADC runs at reduced resolution.
    pub degraded_adc: f64,
    /// Resolution bits lost by a degraded ADC.
    pub adc_bits_lost: u32,
}

impl FaultRates {
    /// No faults at all.
    pub fn ideal() -> Self {
        FaultRates {
            dead_xbar: 0.0,
            degraded_adc: 0.0,
            adc_bits_lost: 0,
        }
    }

    /// Dead-crossbar faults only, at probability `p`.
    pub fn dead(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate out of range: {p}");
        FaultRates {
            dead_xbar: p,
            ..Self::ideal()
        }
    }

    /// True when every effect is disabled.
    pub fn is_ideal(&self) -> bool {
        self.dead_xbar == 0.0 && self.degraded_adc == 0.0
    }
}

/// Health of one logical crossbar slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentHealth {
    /// Fully functional.
    Healthy,
    /// Computes, but its ADC lost `bits_lost` resolution bits.
    DegradedAdc {
        /// Resolution bits lost relative to the configured ADC.
        bits_lost: u32,
    },
    /// Unusable: holds no weights, produces no output.
    Dead,
}

impl ComponentHealth {
    /// True when the slot can hold weights (healthy or merely degraded).
    pub fn is_usable(&self) -> bool {
        !matches!(self, ComponentHealth::Dead)
    }
}

/// Fault status of one tile: its primary crossbar slots plus any spares.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileFaults {
    /// Health per primary slot; length = tile capacity.
    pub slots: Vec<ComponentHealth>,
    /// Health per spare slot; length = spares provisioned for this tile.
    pub spares: Vec<ComponentHealth>,
}

impl TileFaults {
    /// Dead primary slots.
    pub fn dead_slots(&self) -> usize {
        self.slots.iter().filter(|h| !h.is_usable()).count()
    }

    /// Usable (healthy or degraded) spare slots.
    pub fn usable_spares(&self) -> usize {
        self.spares.iter().filter(|h| h.is_usable()).count()
    }
}

/// A sampled fault assignment for one allocation's tile population.
///
/// Tiles are addressed by *position* (index into the allocation's tile
/// vector at sampling time), not by tile id — the map is a property of the
/// physical tile array, sampled once per accelerator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    /// Seed the map was sampled with.
    pub seed: u64,
    /// Rates the map was sampled with.
    pub rates: FaultRates,
    /// Per-tile fault status, indexed by tile position.
    pub tiles: Vec<TileFaults>,
}

/// SplitMix64 finalizer: decorrelates consecutive hash inputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The component's uniform roll in `[0, 1)` — a pure function of
/// `(seed, tile, slot, effect)`, independent of any rate, so fault sets
/// are nested across rates (see module docs).
fn roll(seed: u64, tile: u64, slot: u64, effect: u64) -> f64 {
    let h = splitmix64(
        seed ^ splitmix64(tile.wrapping_mul(0x517C_C1B7_2722_0A95) ^ slot.rotate_left(32) ^ effect),
    );
    // 53 high bits → uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Effect tags for [`roll`]. Spares use the same effects at offset slots.
const EFFECT_DEAD: u64 = 0;
const EFFECT_ADC: u64 = 1;

fn sample_slot(seed: u64, rates: &FaultRates, tile: u64, slot: u64) -> ComponentHealth {
    if roll(seed, tile, slot, EFFECT_DEAD) < rates.dead_xbar {
        ComponentHealth::Dead
    } else if rates.adc_bits_lost > 0 && roll(seed, tile, slot, EFFECT_ADC) < rates.degraded_adc {
        ComponentHealth::DegradedAdc {
            bits_lost: rates.adc_bits_lost,
        }
    } else {
        ComponentHealth::Healthy
    }
}

impl FaultMap {
    /// Sample a fault map for a tile array where tile `i` has
    /// `capacities[i]` primary crossbars and `spares_per_tile` spares.
    pub fn sample(
        seed: u64,
        rates: FaultRates,
        capacities: &[u32],
        spares_per_tile: u32,
    ) -> FaultMap {
        assert!((0.0..=1.0).contains(&rates.dead_xbar), "dead_xbar rate");
        assert!(
            (0.0..=1.0).contains(&rates.degraded_adc),
            "degraded_adc rate"
        );
        let tiles = capacities
            .iter()
            .enumerate()
            .map(|(t, &cap)| TileFaults {
                slots: (0..cap)
                    .map(|s| sample_slot(seed, &rates, t as u64, s as u64))
                    .collect(),
                // Spares draw from the same process at offset slot indices
                // so primary and spare fates stay independent.
                spares: (0..spares_per_tile)
                    .map(|s| sample_slot(seed, &rates, t as u64, cap as u64 + s as u64))
                    .collect(),
            })
            .collect();
        FaultMap { seed, rates, tiles }
    }

    /// A map with every component healthy (rate-zero shortcut).
    pub fn ideal(capacities: &[u32], spares_per_tile: u32) -> FaultMap {
        FaultMap::sample(0, FaultRates::ideal(), capacities, spares_per_tile)
    }

    /// Health of primary slot `slot` of the tile at `position`.
    pub fn health(&self, position: usize, slot: usize) -> ComponentHealth {
        self.tiles[position].slots[slot]
    }

    /// Total dead primary slots across the array.
    pub fn dead_slots(&self) -> u64 {
        self.tiles.iter().map(|t| t.dead_slots() as u64).sum()
    }

    /// Total degraded-ADC primary slots across the array.
    pub fn degraded_slots(&self) -> u64 {
        self.tiles
            .iter()
            .flat_map(|t| &t.slots)
            .filter(|h| matches!(h, ComponentHealth::DegradedAdc { .. }))
            .count() as u64
    }

    /// Total usable spares across the array.
    pub fn usable_spares(&self) -> u64 {
        self.tiles.iter().map(|t| t.usable_spares() as u64).sum()
    }

    /// True when no component is faulted.
    pub fn is_ideal(&self) -> bool {
        self.tiles.iter().all(|t| {
            t.slots
                .iter()
                .chain(&t.spares)
                .all(|h| *h == ComponentHealth::Healthy)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(n: usize) -> Vec<u32> {
        vec![4; n]
    }

    #[test]
    fn zero_rates_yield_an_ideal_map() {
        let m = FaultMap::ideal(&caps(16), 1);
        assert!(m.is_ideal());
        assert_eq!(m.dead_slots(), 0);
        assert_eq!(m.usable_spares(), 16);
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let r = FaultRates {
            dead_xbar: 0.1,
            degraded_adc: 0.05,
            adc_bits_lost: 2,
        };
        let a = FaultMap::sample(7, r, &caps(32), 2);
        let b = FaultMap::sample(7, r, &caps(32), 2);
        assert_eq!(a, b);
        let c = FaultMap::sample(8, r, &caps(32), 2);
        assert_ne!(a, c);
    }

    #[test]
    fn dead_rate_is_approximately_honored() {
        let m = FaultMap::sample(3, FaultRates::dead(0.2), &caps(2000), 0);
        let frac = m.dead_slots() as f64 / 8000.0;
        assert!((frac - 0.2).abs() < 0.02, "dead fraction {frac}");
    }

    #[test]
    fn fault_sets_are_nested_across_rates() {
        // The load-bearing property behind monotone fault campaigns: with
        // one seed, every component dead at a low rate is dead at every
        // higher rate.
        let low = FaultMap::sample(11, FaultRates::dead(0.05), &caps(200), 2);
        let high = FaultMap::sample(11, FaultRates::dead(0.25), &caps(200), 2);
        for (lt, ht) in low.tiles.iter().zip(&high.tiles) {
            for (l, h) in lt
                .slots
                .iter()
                .zip(&ht.slots)
                .chain(lt.spares.iter().zip(&ht.spares))
            {
                if *l == ComponentHealth::Dead {
                    assert_eq!(*h, ComponentHealth::Dead);
                }
            }
        }
        assert!(high.dead_slots() > low.dead_slots());
    }

    #[test]
    fn dead_takes_precedence_over_degraded() {
        let r = FaultRates {
            dead_xbar: 1.0,
            degraded_adc: 1.0,
            adc_bits_lost: 3,
        };
        let m = FaultMap::sample(1, r, &caps(4), 1);
        assert!(m
            .tiles
            .iter()
            .flat_map(|t| t.slots.iter().chain(&t.spares))
            .all(|h| *h == ComponentHealth::Dead));
    }

    #[test]
    fn degraded_slots_are_usable_but_counted() {
        let r = FaultRates {
            dead_xbar: 0.0,
            degraded_adc: 1.0,
            adc_bits_lost: 2,
        };
        let m = FaultMap::sample(2, r, &caps(8), 0);
        assert_eq!(m.degraded_slots(), 32);
        assert_eq!(m.dead_slots(), 0);
        assert!(m.tiles.iter().flat_map(|t| &t.slots).all(|h| h.is_usable()));
    }

    #[test]
    fn heterogeneous_capacities_are_respected() {
        let m = FaultMap::ideal(&[2, 8, 4], 3);
        assert_eq!(m.tiles[0].slots.len(), 2);
        assert_eq!(m.tiles[1].slots.len(), 8);
        assert_eq!(m.tiles[2].slots.len(), 4);
        assert!(m.tiles.iter().all(|t| t.spares.len() == 3));
    }
}
