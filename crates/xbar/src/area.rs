//! Silicon area accounting.
//!
//! Area is provisioned-hardware bound: every allocated logical crossbar
//! brings `slices()` physical crossbar slices, each with one ADC per
//! bitline, a driver per wordline and the cell array; every allocated tile
//! adds buffer/pooling/control overhead. This is the structure behind the
//! paper's Table 5, where the 32×32 homogeneous accelerator is an order of
//! magnitude larger than the 512×512 one despite holding the same weights
//! (the ADC population explodes).

use crate::cost::CostParams;
use crate::geometry::XbarShape;

/// Area of one physical crossbar slice [µm²].
pub fn slice_area(shape: XbarShape, p: &CostParams) -> f64 {
    shape.cols as f64 * p.adc_area()
        + shape.rows as f64 * p.a_driver
        + shape.cells() as f64 * p.a_cell
        + p.a_xb_fixed
}

/// Area of `allocated` logical crossbars of `shape` [µm²].
pub fn crossbar_area(allocated: u64, shape: XbarShape, p: &CostParams) -> f64 {
    allocated as f64 * p.slices() as f64 * slice_area(shape, p)
}

/// Tile overhead for `tiles` allocated tiles [µm²].
pub fn tile_overhead_area(tiles: u64, p: &CostParams) -> f64 {
    tiles as f64 * p.a_tile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_population_dominates_slice_area() {
        let p = CostParams::default();
        let s = XbarShape::square(64);
        let adc_part = 64.0 * p.adc_area();
        assert!(adc_part / slice_area(s, &p) > 0.5);
    }

    #[test]
    fn equal_weights_smaller_crossbars_cost_more_area() {
        // 256 crossbars of 32×32 hold the same cells as one 512×512, but
        // provision 256×32 = 8192 ADCs instead of 512.
        let p = CostParams::default();
        let many_small = crossbar_area(256, XbarShape::square(32), &p);
        let one_big = crossbar_area(1, XbarShape::square(512), &p);
        assert!(many_small > 5.0 * one_big, "{many_small} vs {one_big}");
    }

    #[test]
    fn area_is_linear_in_allocation() {
        let p = CostParams::default();
        let s = XbarShape::new(72, 64);
        assert!((crossbar_area(10, s, &p) - 10.0 * crossbar_area(1, s, &p)).abs() < 1e-6);
        assert!((tile_overhead_area(3, &p) - 3.0 * p.a_tile).abs() < 1e-9);
    }

    #[test]
    fn slices_multiply_physical_area() {
        let mut p = CostParams::default();
        let s = XbarShape::square(64);
        let a8 = crossbar_area(1, s, &p);
        p.cell_bits = 2; // 4 slices instead of 8
        let a4 = crossbar_area(1, s, &p);
        assert!((a8 / a4 - 2.0).abs() < 1e-12);
    }
}
