//! Crossbar shapes and the paper's candidate sets.
//!
//! §3.3 of the paper observes that square power-of-two crossbars waste rows
//! on 3×3 kernels (27 of 32 rows used, etc.) and introduces *rectangle*
//! crossbars whose heights are multiples of 9 while keeping power-of-two
//! widths. The candidate sets below are verbatim from the paper:
//!
//! - square (SXB): 32×32, 64×64, 128×128, 256×256, 512×512 (§4.1 baselines)
//! - rectangle (RXB): 36×32, 72×64, 144×128, 288×256, 576×512 (§4.3)
//! - the hybrid set AutoHet searches over: 32×32, 36×32, 72×64, 288×256,
//!   576×512 (§3.3 / §4.1)

use serde::{Deserialize, Serialize};
use std::fmt;

/// An `rows × cols` crossbar shape (wordlines × bitlines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct XbarShape {
    /// Wordlines (weight-matrix rows mapped here).
    pub rows: u32,
    /// Bitlines (one kernel per column; one ADC per bitline).
    pub cols: u32,
}

impl XbarShape {
    /// Construct a shape; both sides must be non-zero.
    pub const fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0);
        XbarShape { rows, cols }
    }

    /// Square shorthand.
    pub const fn square(side: u32) -> Self {
        Self::new(side, side)
    }

    /// Total memristor cells.
    pub fn cells(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// True for square crossbars (the paper's SXB).
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// True for the paper's rectangle crossbars: height a multiple of 9
    /// (matched to 3×3 kernels) and not square.
    pub fn is_rect(&self) -> bool {
        !self.is_square() && self.rows % 9 == 0
    }
}

impl fmt::Display for XbarShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// The five square baseline sizes (§4.1): each forms one homogeneous
/// accelerator baseline.
pub const SQUARE_CANDIDATES: [XbarShape; 5] = [
    XbarShape::square(32),
    XbarShape::square(64),
    XbarShape::square(128),
    XbarShape::square(256),
    XbarShape::square(512),
];

/// The five rectangle sizes (§4.3): heights are multiples of 9.
pub const RECT_CANDIDATES: [XbarShape; 5] = [
    XbarShape::new(36, 32),
    XbarShape::new(72, 64),
    XbarShape::new(144, 128),
    XbarShape::new(288, 256),
    XbarShape::new(576, 512),
];

/// The hybrid candidate set AutoHet searches over by default (§3.3/§4.1):
/// one square plus four rectangles.
pub fn paper_hybrid_candidates() -> Vec<XbarShape> {
    vec![
        XbarShape::square(32),
        XbarShape::new(36, 32),
        XbarShape::new(72, 64),
        XbarShape::new(288, 256),
        XbarShape::new(576, 512),
    ]
}

/// All ten shapes (5 SXB + 5 RXB), the pool §4.4's sensitivity study draws
/// `aSbR` subsets from.
pub fn all_candidates() -> Vec<XbarShape> {
    let mut v = SQUARE_CANDIDATES.to_vec();
    v.extend_from_slice(&RECT_CANDIDATES);
    v
}

/// Choose `n_square` squares and `n_rect` rectangles (largest-first
/// diversity: picks are spread across the size range), used by the §4.4
/// ratio sweep.
pub fn mixed_candidates(n_square: usize, n_rect: usize) -> Vec<XbarShape> {
    assert!(n_square <= SQUARE_CANDIDATES.len() && n_rect <= RECT_CANDIDATES.len());
    let pick = |pool: &[XbarShape], n: usize| -> Vec<XbarShape> {
        // Spread selections evenly over the ordered pool so every mix spans
        // small and large shapes (e.g. n=2 → {smallest, largest}).
        match n {
            0 => vec![],
            1 => vec![pool[pool.len() - 1]],
            _ => (0..n)
                .map(|i| pool[i * (pool.len() - 1) / (n - 1)])
                .collect(),
        }
    };
    let mut v = pick(&SQUARE_CANDIDATES, n_square);
    v.extend(pick(&RECT_CANDIDATES, n_rect));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = XbarShape::new(36, 32);
        assert_eq!(s.cells(), 36 * 32);
        assert!(!s.is_square());
        assert!(s.is_rect());
        assert_eq!(s.to_string(), "36x32");
        assert!(XbarShape::square(64).is_square());
        assert!(!XbarShape::square(64).is_rect());
    }

    #[test]
    fn paper_candidate_sets() {
        assert_eq!(SQUARE_CANDIDATES.len(), 5);
        assert!(SQUARE_CANDIDATES.iter().all(|s| s.is_square()));
        assert!(RECT_CANDIDATES.iter().all(|s| s.rows % 9 == 0));
        let hybrid = paper_hybrid_candidates();
        assert_eq!(hybrid.len(), 5);
        assert_eq!(hybrid[0], XbarShape::square(32));
        assert_eq!(hybrid[4], XbarShape::new(576, 512));
        assert_eq!(all_candidates().len(), 10);
    }

    #[test]
    fn rect_heights_match_widths_times_nine_eighths() {
        // §3.3: widths stay powers of two, heights become multiples of 9.
        for r in RECT_CANDIDATES {
            assert_eq!(r.rows % 9, 0);
            assert!(r.cols.is_power_of_two());
        }
    }

    #[test]
    fn mixed_candidates_counts() {
        for (s, r) in [(2, 3), (3, 2), (4, 1), (5, 0), (0, 5)] {
            let v = mixed_candidates(s, r);
            assert_eq!(v.len(), s + r);
            assert_eq!(v.iter().filter(|x| x.is_square()).count(), s);
        }
    }

    #[test]
    fn mixed_candidates_span_size_range() {
        let v = mixed_candidates(2, 2);
        assert!(v.contains(&XbarShape::square(32)));
        assert!(v.contains(&XbarShape::square(512)));
        assert!(v.contains(&XbarShape::new(36, 32)));
        assert!(v.contains(&XbarShape::new(576, 512)));
    }

    #[test]
    fn shapes_order_for_grouping() {
        // Ord lets allocators group tiles by shape deterministically.
        let mut v = [XbarShape::square(64), XbarShape::new(36, 32)];
        v.sort();
        assert_eq!(v[0], XbarShape::new(36, 32));
    }
}
