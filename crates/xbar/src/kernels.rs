//! Bit-packed MVM kernels (DESIGN.md §9).
//!
//! The scalar [`crate::Crossbar::mvm_scalar`] walks every active wordline
//! cell-by-cell and allocates a bit-plane and a bitline buffer per
//! (cycle, plane) pair. This module provides the data structures the fast
//! path is built from:
//!
//! - [`PackedInput`]: all 8 input bit-planes of a `u8` activation vector
//!   packed once into `u64` wordline masks (bit `r` of plane `t` = bit `t`
//!   of `input[r]`), plus the digital input sum and a nonzero-plane mask so
//!   all-zero cycles are skipped without touching memory.
//! - [`PackedWeights`]: the crossbar's conductance planes re-sliced into
//!   per-column `u64` row masks, one mask per *weight bit* (a `cell_bits`-
//!   level plane contributes `cell_bits` single-bit slices). With these,
//!   one (cycle, plane, column) bitline sum collapses to `cell_bits`
//!   popcounts of `wordline_mask & column_mask` — integer arithmetic, no
//!   per-row branches, independent of how many rows are active.
//! - [`XbarScratch`]: the reusable buffers (input masks + an `f64` bitline
//!   accumulator for the non-integral fallback) so repeated MVMs through
//!   one thread allocate nothing.
//!
//! Packing is only valid while every programmed conductance is an exact
//! integer level in `[0, 2^cell_bits)` — true at program time and after
//! pure stuck-at faults, false after Gaussian conductance variation. The
//! noisy case falls back to `f64` bitline accumulation that still uses the
//! packed input masks (zero-plane and zero-word skipping, bit-scan row
//! iteration in ascending order), so both paths stay bit-identical to the
//! scalar reference: the integer path because bitline sums below `2^53`
//! are exact in either domain, the fallback because `f64` additions happen
//! in the same ascending-row order.

/// All 8 bit-planes of one input vector, packed into `u64` wordline masks.
#[derive(Debug, Clone, Default)]
pub struct PackedInput {
    /// `u64` words per plane (`ceil(n / 64)`, min 1).
    words: usize,
    /// Input length.
    n: usize,
    /// Plane `t` occupies `masks[t * words .. (t + 1) * words]`.
    masks: Vec<u64>,
    /// Bit `t` set ⇔ plane `t` has at least one active wordline.
    nonzero: u8,
    /// `Σ input[r]` — the digital offset-correction sum.
    input_sum: i64,
}

impl PackedInput {
    /// An empty pack; call [`PackedInput::pack`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pack `input` into the 8 wordline masks, reusing the allocation.
    pub fn pack(&mut self, input: &[u8]) {
        let words = words_for(input.len());
        self.words = words;
        self.n = input.len();
        self.masks.clear();
        self.masks.resize(8 * words, 0);
        let mut sum = 0_i64;
        for (r, &x) in input.iter().enumerate() {
            sum += x as i64;
            if x == 0 {
                continue;
            }
            let word = r >> 6;
            let bit = 1_u64 << (r & 63);
            let mut v = x;
            while v != 0 {
                let t = v.trailing_zeros() as usize;
                self.masks[t * words + word] |= bit;
                v &= v - 1;
            }
        }
        self.input_sum = sum;
        let mut nonzero = 0_u8;
        for t in 0..8 {
            if self.masks[t * words..(t + 1) * words]
                .iter()
                .any(|&w| w != 0)
            {
                nonzero |= 1 << t;
            }
        }
        self.nonzero = nonzero;
    }

    /// Input length this pack was built from.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when packed from an empty input.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `u64` words per plane.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Digital input sum (for the signed-weight offset correction).
    pub fn input_sum(&self) -> i64 {
        self.input_sum
    }

    /// Bitmask of planes with at least one active wordline.
    pub fn nonzero_planes(&self) -> u8 {
        self.nonzero
    }

    /// The wordline mask of bit-plane `t` (0..8).
    #[inline]
    pub fn plane(&self, t: usize) -> &[u64] {
        &self.masks[t * self.words..(t + 1) * self.words]
    }
}

/// Per-column packed weight bit-slices of one crossbar.
///
/// Layout: column `j` of conductance plane `b` contributes `cell_bits`
/// single-bit slices; slice `lb` of that column lives at
/// `masks[((b * cols + j) * cell_bits + lb) * words ..][..words]`, so the
/// `cell_bits × words` block a bitline sum needs is contiguous.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    words: usize,
    cols: usize,
    cell_bits: u32,
    masks: Vec<u64>,
}

impl PackedWeights {
    /// Pack conductance planes (row-major, `col_stride` cells per row) into
    /// per-column bit slices. Returns `None` when any used cell is not an
    /// exact integer level in `[0, 2^cell_bits)` — i.e. after analog
    /// conductance variation — in which case callers must keep summing in
    /// `f64`.
    pub fn from_planes(
        planes: &[Vec<f64>],
        rows_used: usize,
        cols_used: usize,
        col_stride: usize,
        cell_bits: u32,
    ) -> Option<Self> {
        let words = words_for(rows_used);
        let max_level = (1_u64 << cell_bits) - 1;
        let mut masks = vec![0_u64; planes.len() * cols_used * cell_bits as usize * words];
        for (b, plane) in planes.iter().enumerate() {
            for (r, row) in plane.chunks(col_stride).take(rows_used).enumerate() {
                let word = r >> 6;
                let bit = 1_u64 << (r & 63);
                for (j, &g) in row[..cols_used].iter().enumerate() {
                    if g == 0.0 {
                        continue;
                    }
                    if g < 0.0 || g > max_level as f64 || g.fract() != 0.0 {
                        return None;
                    }
                    let mut level = g as u64;
                    while level != 0 {
                        let lb = level.trailing_zeros() as usize;
                        let col = b * cols_used + j;
                        masks[(col * cell_bits as usize + lb) * words + word] |= bit;
                        level &= level - 1;
                    }
                }
            }
        }
        Some(PackedWeights {
            words,
            cols: cols_used,
            cell_bits,
            masks,
        })
    }

    /// `u64` words per column slice.
    pub fn words(&self) -> usize {
        self.words
    }

    /// All column blocks of plane `b` as one contiguous slice
    /// (`cols × cell_bits × words` words, in ascending-column order) — the
    /// hot MVM loop walks this linearly instead of re-slicing per column.
    #[inline]
    pub fn plane_cols(&self, b: usize) -> &[u64] {
        let len = self.cols * self.cell_bits as usize * self.words;
        &self.masks[b * len..(b + 1) * len]
    }

    /// The contiguous `cell_bits × words` slice block of (plane `b`,
    /// column `j`).
    #[inline]
    fn column(&self, b: usize, j: usize) -> &[u64] {
        let col = b * self.cols + j;
        let start = col * self.cell_bits as usize * self.words;
        &self.masks[start..start + self.cell_bits as usize * self.words]
    }

    /// One bitline sum: `Σ_r active[r] · level[r][j]` for (cycle mask
    /// `wordlines`, plane `b`, column `j`) via per-bit popcounts.
    #[inline]
    pub fn bitline_sum(&self, wordlines: &[u64], b: usize, j: usize) -> i64 {
        let block = self.column(b, j);
        debug_assert_eq!(wordlines.len(), self.words);
        let mut sum = 0_i64;
        for lb in 0..self.cell_bits as usize {
            let col = &block[lb * self.words..(lb + 1) * self.words];
            let ones: u32 = wordlines
                .iter()
                .zip(col)
                .map(|(&m, &c)| (m & c).count_ones())
                .sum();
            sum += (ones as i64) << lb;
        }
        sum
    }
}

/// Reusable per-thread (or per-caller) MVM buffers: the packed input masks
/// and the `f64` bitline accumulator of the non-integral fallback path.
#[derive(Debug, Clone, Default)]
pub struct XbarScratch {
    /// Packed input bit-planes.
    pub(crate) input: PackedInput,
    /// `f64` bitline accumulator (fallback path only).
    pub(crate) bitline: Vec<f64>,
}

impl XbarScratch {
    /// Fresh (empty) scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `u64` words needed to hold `n` row bits (min 1 so empty inputs stay
/// indexable).
#[inline]
pub fn words_for(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// Visit the set bits of `mask` in ascending index order. The visitor gets
/// the bit index; iteration order matters — the `f64` fallback path relies
/// on it matching the scalar reference's ascending-row accumulation.
#[inline]
pub fn for_each_set_bit(mask: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in mask.iter().enumerate() {
        let mut m = word;
        while m != 0 {
            f((w << 6) + m.trailing_zeros() as usize);
            m &= m - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_input_matches_bit_plane_reference() {
        let input: Vec<u8> = (0..100).map(|i| (i * 37 % 256) as u8).collect();
        let mut p = PackedInput::new();
        p.pack(&input);
        assert_eq!(p.words(), 2);
        assert_eq!(p.input_sum(), input.iter().map(|&x| x as i64).sum::<i64>());
        for t in 0..8 {
            let reference = crate::dac::bit_plane(&input, t as u32);
            let mask = p.plane(t);
            for (r, &bit) in reference.iter().enumerate() {
                let got = (mask[r >> 6] >> (r & 63)) & 1;
                assert_eq!(got as u8, bit, "plane {t} row {r}");
            }
            assert_eq!(
                p.nonzero_planes() >> t & 1 == 1,
                reference.iter().any(|&b| b != 0)
            );
        }
    }

    #[test]
    fn packed_input_handles_empty_and_zero() {
        let mut p = PackedInput::new();
        p.pack(&[]);
        assert!(p.is_empty());
        assert_eq!(p.nonzero_planes(), 0);
        assert_eq!(p.input_sum(), 0);
        p.pack(&[0, 0, 0]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.nonzero_planes(), 0);
    }

    #[test]
    fn packed_weights_reject_non_integral_levels() {
        let plane = vec![vec![1.0, 0.5]];
        assert!(PackedWeights::from_planes(&plane, 1, 2, 2, 1).is_none());
        let plane = vec![vec![2.0, 0.0]]; // above the 1-bit max level
        assert!(PackedWeights::from_planes(&plane, 1, 2, 2, 1).is_none());
        let plane = vec![vec![-1.0, 0.0]];
        assert!(PackedWeights::from_planes(&plane, 1, 2, 2, 1).is_none());
    }

    #[test]
    fn bitline_sum_counts_leveled_cells() {
        // One 2-bit plane over 3 rows, 2 cols: levels [[3, 1], [2, 0], [1, 3]].
        let plane = vec![vec![3.0, 1.0, 2.0, 0.0, 1.0, 3.0]];
        let pw = PackedWeights::from_planes(&plane, 3, 2, 2, 2).unwrap();
        // All three rows active.
        let mask = [0b111_u64];
        assert_eq!(pw.bitline_sum(&mask, 0, 0), 6);
        assert_eq!(pw.bitline_sum(&mask, 0, 1), 4);
        // Only row 2 active.
        let mask = [0b100_u64];
        assert_eq!(pw.bitline_sum(&mask, 0, 0), 1);
        assert_eq!(pw.bitline_sum(&mask, 0, 1), 3);
    }

    #[test]
    fn set_bit_iteration_is_ascending() {
        let mask = [1_u64 << 63 | 1 << 5, 1 << 0 | 1 << 40];
        let mut seen = Vec::new();
        for_each_set_bit(&mask, |r| seen.push(r));
        assert_eq!(seen, vec![5, 63, 64, 104]);
    }
}
