//! Per-layer energy accounting.
//!
//! Two components, following the MNSIM/ISAAC modeling style:
//!
//! 1. **Dynamic** energy: activation counts × per-op energies. Every
//!    compute cycle, each *occupied* crossbar converts all of its bitlines
//!    (this is exactly the "activated ADC" counting of the paper's Fig. 5:
//!    256 ADC activations for the 64×64 mapping vs 128 for 128×128).
//! 2. **Static** energy: provisioned-hardware leakage × time. Small
//!    crossbars provision vastly more ADCs for the same model, which is
//!    why the paper's large-crossbar accelerators win energy (§2.2) —
//!    static ADC power dominates and is charged on the *allocated* (tile
//!    round-up or tile-shared) hardware for the duration of the inference.
//!
//! All energies in nJ.

use crate::cost::CostParams;
use crate::utilization::Footprint;
use autohet_dnn::Layer;
use serde::{Deserialize, Serialize};

/// Dynamic activation counts for one layer's inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicCounts {
    /// ADC conversions: cycles × occupied crossbars × bitlines × slices.
    pub adc_conversions: u64,
    /// DAC conversions: cycles × crossbar-grid rows × wordlines (inputs are
    /// broadcast across the grid's columns and across bit slices).
    pub dac_conversions: u64,
    /// Active cell-cycles: cycles × weight-holding cells × slices.
    pub cell_reads: u64,
    /// Shift-and-add merges: one per ADC sample.
    pub shift_adds: u64,
    /// Tile buffer traffic: input vector + output vector bytes per
    /// presentation.
    pub buffer_bytes: u64,
}

/// Count the dynamic activations of `layer` mapped as `fp`.
pub fn dynamic_counts(layer: &Layer, fp: &Footprint, p: &CostParams) -> DynamicCounts {
    debug_assert!(p.input_activity > 0.0 && p.input_activity <= 1.0);
    // Bit-serial cycles whose input plane is non-zero actually fire the
    // array and converters (all-zero planes are skipped, matching the
    // functional crossbar).
    let raw_cycles = layer.presentations() as u64 * p.input_bits as u64;
    let cycles = ((raw_cycles as f64 * p.input_activity).ceil() as u64).max(1);
    let slices = p.slices() as u64;
    let adc = cycles * fp.total_xbars() * fp.shape.cols as u64 * slices;
    let dac = cycles * fp.xb_rows as u64 * fp.shape.rows as u64;
    let cells = cycles * fp.used_cells * slices;
    let buffer =
        layer.presentations() as u64 * (layer.weight_rows() as u64 + layer.weight_cols() as u64);
    DynamicCounts {
        adc_conversions: adc,
        dac_conversions: dac,
        cell_reads: cells,
        shift_adds: adc,
        buffer_bytes: buffer,
    }
}

/// Static power [nW] of `allocated` logical crossbars of `shape`
/// (each logical crossbar is `slices()` physical slices; each slice carries
/// one ADC per bitline plus row drivers and the cell array).
pub fn static_power(allocated: u64, shape: crate::XbarShape, p: &CostParams) -> f64 {
    let per_slice = shape.cols as f64 * p.adc_power()
        + shape.rows as f64 * p.p_driver
        + shape.cells() as f64 * p.p_cell;
    allocated as f64 * p.slices() as f64 * per_slice
}

/// Itemized per-layer energy [nJ].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerEnergy {
    pub adc: f64,
    pub dac: f64,
    pub cell: f64,
    pub shift_add: f64,
    pub buffer: f64,
    /// Static energy of this layer's allocated hardware over the whole
    /// inference (`static_power × total inference latency`).
    pub leakage: f64,
}

impl LayerEnergy {
    /// Total energy [nJ].
    pub fn total(&self) -> f64 {
        self.adc + self.dac + self.cell + self.shift_add + self.buffer + self.leakage
    }

    /// Sum two breakdowns (used when aggregating a model).
    pub fn accumulate(&mut self, other: &LayerEnergy) {
        self.adc += other.adc;
        self.dac += other.dac;
        self.cell += other.cell;
        self.shift_add += other.shift_add;
        self.buffer += other.buffer;
        self.leakage += other.leakage;
    }
}

/// Energy of `layer` mapped as `fp`, charged `allocated` logical crossbars
/// of leakage for `inference_latency_ns` (the whole model's runtime —
/// hardware leaks whether or not its layer is currently computing).
pub fn layer_energy(
    layer: &Layer,
    fp: &Footprint,
    allocated: u64,
    inference_latency_ns: f64,
    p: &CostParams,
) -> LayerEnergy {
    let n = dynamic_counts(layer, fp, p);
    // nW × ns = 1e-18 J = 1e-9 nJ.
    let leakage = static_power(allocated, fp.shape, p) * inference_latency_ns * 1e-9;
    LayerEnergy {
        adc: n.adc_conversions as f64 * p.adc_energy(),
        dac: n.dac_conversions as f64 * p.e_dac,
        cell: n.cell_reads as f64 * p.e_cell,
        shift_add: n.shift_adds as f64 * p.e_shift_add,
        buffer: n.buffer_bytes as f64 * p.e_buffer,
        leakage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::XbarShape;
    use crate::utilization::footprint;
    use autohet_dnn::Layer;

    fn fig5_layer() -> Layer {
        // 128 kernels of 3×3×12 (paper Fig. 5).
        Layer::conv(0, 12, 128, 3, 1, 1, 16)
    }

    #[test]
    fn fig5_adc_activation_counts() {
        // Paper Fig. 5: 256 activated ADCs on 64×64 (4 crossbars × 64),
        // 128 on 128×128 (1 crossbar × 128). Our per-cycle ADC activation
        // count per slice is exactly that.
        let l = fig5_layer();
        let p = CostParams::default();
        let fp64 = footprint(&l, XbarShape::square(64));
        let fp128 = footprint(&l, XbarShape::square(128));
        let per_cycle = |fp: &Footprint| fp.total_xbars() * fp.shape.cols as u64;
        assert_eq!(per_cycle(&fp64), 256);
        assert_eq!(per_cycle(&fp128), 128);
        let c64 = dynamic_counts(&l, &fp64, &p);
        let c128 = dynamic_counts(&l, &fp128, &p);
        assert_eq!(c64.adc_conversions, 2 * c128.adc_conversions);
    }

    #[test]
    fn dynamic_counts_scale_with_presentations() {
        let p = CostParams::default();
        let small = Layer::conv(0, 12, 128, 3, 1, 1, 8);
        let big = Layer::conv(0, 12, 128, 3, 1, 1, 16);
        let shape = XbarShape::square(64);
        let cs = dynamic_counts(&small, &footprint(&small, shape), &p);
        let cb = dynamic_counts(&big, &footprint(&big, shape), &p);
        assert_eq!(cb.adc_conversions, 4 * cs.adc_conversions);
        assert_eq!(cb.buffer_bytes, 4 * cs.buffer_bytes);
    }

    #[test]
    fn static_power_counts_provisioned_adcs() {
        let p = CostParams::default();
        let w32 = static_power(1, XbarShape::square(32), &p);
        let w512 = static_power(1, XbarShape::square(512), &p);
        // Per crossbar, a 512-wide crossbar has 16× the ADCs.
        assert!(w512 > 15.0 * w32 && w512 < 18.0 * w32);
        assert!((static_power(10, XbarShape::square(32), &p) - 10.0 * w32).abs() < 1e-9);
    }

    #[test]
    fn energy_total_sums_components() {
        let l = fig5_layer();
        let p = CostParams::default();
        let fp = footprint(&l, XbarShape::square(64));
        let e = layer_energy(&l, &fp, fp.total_xbars(), 1e6, &p);
        let manual = e.adc + e.dac + e.cell + e.shift_add + e.buffer + e.leakage;
        assert!((e.total() - manual).abs() < 1e-9);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn leakage_grows_with_allocation_and_time() {
        let l = fig5_layer();
        let p = CostParams::default();
        let fp = footprint(&l, XbarShape::square(64));
        let e1 = layer_energy(&l, &fp, 4, 1e6, &p);
        let e2 = layer_energy(&l, &fp, 8, 1e6, &p);
        let e3 = layer_energy(&l, &fp, 4, 2e6, &p);
        assert!((e2.leakage / e1.leakage - 2.0).abs() < 1e-9);
        assert!((e3.leakage / e1.leakage - 2.0).abs() < 1e-9);
        // Dynamic parts unaffected by allocation.
        assert_eq!(e1.adc, e2.adc);
    }

    #[test]
    fn input_activity_scales_dynamics_not_leakage() {
        let l = fig5_layer();
        let fp = footprint(&l, XbarShape::square(64));
        let mut p = CostParams::default();
        let full = layer_energy(&l, &fp, 4, 1e6, &p);
        p.input_activity = 0.5;
        let half = layer_energy(&l, &fp, 4, 1e6, &p);
        assert!((half.adc / full.adc - 0.5).abs() < 1e-3);
        assert!((half.cell / full.cell - 0.5).abs() < 1e-3);
        assert_eq!(half.leakage, full.leakage);
        assert_eq!(half.buffer, full.buffer);
    }

    #[test]
    fn accumulate_adds_fieldwise() {
        let mut a = LayerEnergy {
            adc: 1.0,
            dac: 2.0,
            cell: 3.0,
            shift_add: 4.0,
            buffer: 5.0,
            leakage: 6.0,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.total(), 2.0 * b.total());
    }
}
