//! Stochastic device variation: lognormal Ron/Roff sampling with
//! operation-unit readout, and a packed fast path that keeps variation
//! off the dense `f64` fallback (DESIGN.md §11).
//!
//! The device model follows the HyperMetric RRAM configuration
//! (SNIPPETS.md §3): a programmed LRS cell's resistance is drawn from
//! `R_on · exp(dev_on · z)`, an HRS cell's from `R_off · exp(dev_off · z)`
//! with `z ~ N(0,1)` — multiplicative lognormal spread around the nominal
//! corners. Readout is partitioned into *operation units* of `S_ou`
//! wordlines: each unit's bitline current is resolved against per-unit
//! reference currents placed halfway between the ideal `k`-LRS and
//! `(k+1)`-LRS levels, yielding a digital LRS count per unit. Unit counts
//! then flow through the existing bit-serial shift-and-add pipeline
//! unchanged (ADC clamp, plane/cycle shifts, signed-offset correction).
//!
//! Two implementations are kept deliberately:
//! - [`VariedCrossbar::mvm_scalar`]: the reference — walks every cell's
//!   sampled current per (cycle, plane, column, unit) and thresholds the
//!   analog sum.
//! - [`VariedCrossbar::mvm`] / [`VariedCrossbar::mvm_packed`]: the fast
//!   path — per (plane, column, unit) the count for *every* `2^S_ou`
//!   activation pattern is precomputed once at sampling time with the
//!   same `f64` arithmetic (same ascending-row summation order), so the
//!   hot loop is a pure integer table walk over the packed input's
//!   wordline bits. Bit-identical to the reference by construction;
//!   property-tested in `tests/prop_variation.rs`.

use crate::adc::Adc;
use crate::crossbar::Crossbar;
use crate::dac;
use crate::geometry::XbarShape;
use crate::kernels::PackedInput;
use rand::distributions::{Distribution, LogNormal};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Lognormal Ron/Roff device-variation parameters with operation-unit
/// readout, per the HyperMetric RRAM corner (SNIPPETS.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Nominal low-resistance (programmed-1) state, Ω.
    pub r_on: f64,
    /// Nominal high-resistance (programmed-0) state, Ω.
    pub r_off: f64,
    /// Lognormal deviation of the LRS resistance (`R = r_on·e^{dev·z}`).
    pub dev_on: f64,
    /// Lognormal deviation of the HRS resistance.
    pub dev_off: f64,
    /// Read voltage, V (cell current = `v_read / R`).
    pub v_read: f64,
    /// Operation-unit size: wordlines activated per readout unit, each
    /// unit resolved against its own reference currents. Must divide 64
    /// and be ≤ 8 (so a unit never straddles a packed input word and the
    /// per-unit pattern table stays ≤ 256 entries).
    pub s_ou: u32,
}

impl VariationModel {
    /// The HyperMetric RRAM corner: R ∈ [2.5 kΩ, 16 kΩ], deviations
    /// [0.18, 0.45], 0.9 V read, 4-wordline operation units.
    pub fn hypermetric() -> Self {
        VariationModel {
            r_on: 2500.0,
            r_off: 16000.0,
            dev_on: 0.18,
            dev_off: 0.45,
            v_read: 0.9,
            s_ou: 4,
        }
    }

    /// The same corner with both deviations forced to zero — every
    /// sampled resistance sits at its nominal value and the readout
    /// resolves every unit count exactly.
    pub fn ideal() -> Self {
        VariationModel {
            dev_on: 0.0,
            dev_off: 0.0,
            ..Self::hypermetric()
        }
    }

    /// This model with both deviations scaled by `k` (used to sweep
    /// noise severity without touching the resistance corners).
    pub fn with_deviation_scale(self, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite());
        VariationModel {
            dev_on: self.dev_on * k,
            dev_off: self.dev_off * k,
            ..self
        }
    }

    /// True when both deviations are zero (sampling is deterministic and
    /// the readout is exact regardless of seed).
    pub fn is_exact(&self) -> bool {
        self.dev_on == 0.0 && self.dev_off == 0.0
    }

    fn validate(&self) {
        assert!(
            self.r_on > 0.0 && self.r_off > self.r_on,
            "need 0 < r_on < r_off, got r_on={} r_off={}",
            self.r_on,
            self.r_off
        );
        assert!(
            self.dev_on >= 0.0 && self.dev_off >= 0.0,
            "negative deviation"
        );
        assert!(self.v_read > 0.0, "non-positive read voltage");
        assert!(
            matches!(self.s_ou, 1 | 2 | 4 | 8),
            "s_ou must be 1, 2, 4 or 8 (got {})",
            self.s_ou
        );
    }

    /// The `k`-th reference current for a unit with `activated` driven
    /// wordlines: halfway between the ideal `(k−1)`-LRS and `k`-LRS
    /// levels. Strictly increasing in `k` because `1/r_on > 1/r_off`.
    fn threshold(&self, k: usize, activated: usize) -> f64 {
        self.v_read
            * ((k as f64 - 0.5) / self.r_on + (activated as f64 - k as f64 + 0.5) / self.r_off)
    }

    /// Resolve a unit's analog bitline `current` (from `activated` driven
    /// wordlines) into a digital LRS count: the number of reference
    /// currents at or below it.
    fn count(&self, current: f64, activated: usize) -> u8 {
        let mut k = 0usize;
        while k < activated && current >= self.threshold(k + 1, activated) {
            k += 1;
        }
        k as u8
    }
}

/// One seeded draw of device variation over a programmed [`Crossbar`]:
/// every used cell's resistance is sampled once, and per-unit activation
/// pattern tables are precomputed so MVMs under variation run on the
/// integer fast path instead of the dense `f64` fallback.
///
/// The sampled state is immutable — re-rolling the devices means taking
/// a fresh [`VariedCrossbar::sample`] with a different seed, which is
/// exactly what Monte-Carlo robustness evaluation wants.
#[derive(Debug, Clone)]
pub struct VariedCrossbar {
    model: VariationModel,
    shape: XbarShape,
    weight_bits: u32,
    rows_used: usize,
    cols_used: usize,
    units: usize,
    /// `currents[b][r * cols_used + c]` = sampled cell current (A) of
    /// slice `b`, compact over the used region only.
    currents: Vec<Vec<f64>>,
    /// Quantized readout tables:
    /// `table[(j·units + u) << s_ou | pattern]` holds, in byte lane `b`,
    /// the digital LRS count unit `u` of column `j`, slice `b` resolves
    /// for that wordline activation pattern — all planes of one lookup
    /// ride a single `u64`.
    table: Vec<u64>,
}

impl VariedCrossbar {
    /// Sample one variation draw over `xb` with `seed`. Per-cell RNG
    /// consumption is plane-major, then row-major, then column-major over
    /// the used region — the same walk order as
    /// [`Crossbar::apply_noise`], so streams are reproducible.
    ///
    /// Requires 1-bit cells (the paper's SLC configuration) still on
    /// exact levels: the programmed plane decides LRS (level ≥ 0.5) vs
    /// HRS per cell before resistances are drawn.
    pub fn sample(xb: &Crossbar, model: &VariationModel, seed: u64) -> Self {
        Self::sample_with_reference(xb, model, model, seed)
    }

    /// Sample a draw whose cell currents follow `device` but whose
    /// readout resolves against `reference`'s per-unit thresholds.
    ///
    /// This is the physical substrate of *recalibration* under
    /// conductance drift ([`crate::drift::DriftModel`]): a stale readout
    /// (`device` = drifted population, `reference` = factory model)
    /// systematically miscounts the shrunken currents, while a
    /// recalibrated readout (`reference` = the same drifted model)
    /// restores the per-unit counts. `reference == device` is exactly
    /// [`VariedCrossbar::sample`], bit for bit — they share one code
    /// path.
    ///
    /// The two models must agree on `s_ou` (recalibration re-derives
    /// reference currents, it cannot re-partition the wordlines).
    pub fn sample_with_reference(
        xb: &Crossbar,
        device: &VariationModel,
        reference: &VariationModel,
        seed: u64,
    ) -> Self {
        device.validate();
        reference.validate();
        assert_eq!(
            device.s_ou, reference.s_ou,
            "device and reference models must share the operation-unit size"
        );
        let model = device;
        assert_eq!(xb.cell_bits(), 1, "variation model requires 1-bit cells");
        assert!(
            xb.is_bit_packed(),
            "variation must be sampled from exact programmed levels"
        );
        let shape = xb.shape();
        let (rows_used, cols_used) = xb.used();
        let stride = shape.cols as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let lrs = LogNormal::new(model.r_on.ln(), model.dev_on);
        let hrs = LogNormal::new(model.r_off.ln(), model.dev_off);
        let currents: Vec<Vec<f64>> = xb
            .planes()
            .iter()
            .map(|plane| {
                let mut cur = Vec::with_capacity(rows_used * cols_used);
                for row in plane.chunks(stride).take(rows_used) {
                    for &level in &row[..cols_used] {
                        let r = if level >= 0.5 {
                            lrs.sample(&mut rng)
                        } else {
                            hrs.sample(&mut rng)
                        };
                        cur.push(model.v_read / r);
                    }
                }
                cur
            })
            .collect();

        let s_ou = model.s_ou as usize;
        let units = rows_used.div_ceil(s_ou).max(1);
        let patterns = 1usize << s_ou;
        // One u64 per (column, unit, pattern): plane b's readout count
        // lives in byte lane b, so the hot loop adds all planes with a
        // single integer add (counts are ≤ s_ou ≤ 8, lanes cannot collide
        // within one add).
        assert!(
            currents.len() <= 8,
            "packed variation supports at most 8 bit planes"
        );
        let mut table = vec![0u64; cols_used * units * patterns];
        for (b, cur) in currents.iter().enumerate() {
            let mut idx = 0;
            for j in 0..cols_used {
                for u in 0..units {
                    let base = u * s_ou;
                    for p in 0..patterns {
                        // Ascending-bit summation: identical order (and
                        // therefore identical f64 rounding) to the scalar
                        // reference's ascending-row walk.
                        let mut current = 0.0;
                        let mut activated = 0usize;
                        for bit in 0..s_ou {
                            let r = base + bit;
                            if p & (1 << bit) != 0 && r < rows_used {
                                current += cur[r * cols_used + j];
                                activated += 1;
                            }
                        }
                        table[idx] |= (reference.count(current, activated) as u64) << (8 * b);
                        idx += 1;
                    }
                }
            }
        }
        VariedCrossbar {
            model: *reference,
            shape,
            weight_bits: xb.weight_bits(),
            rows_used,
            cols_used,
            units,
            currents,
            table,
        }
    }

    /// The *reference* model this draw resolves its readout against
    /// (equal to the device model unless the draw was taken with
    /// [`VariedCrossbar::sample_with_reference`]).
    pub fn model(&self) -> &VariationModel {
        &self.model
    }

    /// Shape of the underlying crossbar.
    pub fn shape(&self) -> XbarShape {
        self.shape
    }

    /// Rows / columns actually holding weights.
    pub fn used(&self) -> (usize, usize) {
        (self.rows_used, self.cols_used)
    }

    /// Size of the precomputed pattern tables, bytes (for capacity
    /// planning: `8 · cols · ⌈rows/S_ou⌉ · 2^S_ou` — every entry is a
    /// `u64` carrying one byte lane per plane).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u64>()
    }

    /// Bit-serial MVM under this variation draw (packed fast path).
    /// Bit-identical to [`VariedCrossbar::mvm_scalar`] for every shape,
    /// seed and ADC resolution.
    pub fn mvm(&self, input: &[u8], adc: &Adc) -> Vec<i64> {
        let mut packed = PackedInput::new();
        packed.pack(input);
        self.mvm_packed(&packed, adc)
    }

    /// [`VariedCrossbar::mvm`] over an already-packed input. Per nonzero
    /// input cycle the per-unit activation patterns are extracted once
    /// from the wordline bits; every column's bitline sums for *all*
    /// planes then accumulate together as byte lanes of `u64` table adds
    /// — no `f64` touches the hot loop. Lanes spill into per-plane wide
    /// sums before enough units could overflow a byte.
    pub fn mvm_packed(&self, input: &PackedInput, adc: &Adc) -> Vec<i64> {
        assert_eq!(input.len(), self.rows_used, "input/row mismatch");
        let mut acc = vec![0_i64; self.cols_used];
        let s_ou = self.model.s_ou as usize;
        let pattern_mask = (1u64 << s_ou) - 1;
        let units = self.units;
        let per_col = units << s_ou;
        let planes = self.currents.len();
        // A byte lane overflows once accumulated counts exceed 255; each
        // unit contributes at most s_ou, so spill every ⌊255/s_ou⌋ units.
        let chunk = (255 / s_ou).max(1);
        let mut pats = vec![0usize; units];
        for t in 0..8u32 {
            if input.nonzero_planes() & (1 << t) == 0 {
                continue;
            }
            let wordlines = input.plane(t as usize);
            for (u, pat) in pats.iter_mut().enumerate() {
                // s_ou divides 64, so a unit never straddles word
                // boundaries; bits past rows_used are never set by pack().
                let bit = u * s_ou;
                *pat = ((wordlines[bit >> 6] >> (bit & 63)) & pattern_mask) as usize;
            }
            for (j, a) in acc.iter_mut().enumerate() {
                let col_table = &self.table[j * per_col..j * per_col + per_col];
                let mut sums = [0_i64; 8];
                let mut u0 = 0;
                while u0 < units {
                    let end = (u0 + chunk).min(units);
                    let mut lanes = 0_u64;
                    for (du, &p) in pats[u0..end].iter().enumerate() {
                        lanes += col_table[((u0 + du) << s_ou) | p];
                    }
                    for (b, s) in sums.iter_mut().enumerate().take(planes) {
                        *s += ((lanes >> (8 * b)) & 0xFF) as i64;
                    }
                    u0 = end;
                }
                for (b, &sum) in sums.iter().enumerate().take(planes) {
                    let shift = t + b as u32; // cell_bits = 1
                    *a += adc.sample_exact(sum) << shift;
                }
            }
        }
        let offset = 1_i64 << (self.weight_bits - 1);
        let correction = offset * input.input_sum();
        for a in &mut acc {
            *a -= correction;
        }
        acc
    }

    /// The retained scalar-variation reference: per (cycle, plane,
    /// column, unit) it sums the activated cells' sampled currents in
    /// ascending row order and thresholds the analog sum against the
    /// unit's reference currents. The fast path is property-tested
    /// bit-identical against this; use it only for verification.
    pub fn mvm_scalar(&self, input: &[u8], adc: &Adc) -> Vec<i64> {
        assert_eq!(input.len(), self.rows_used, "input/row mismatch");
        let s_ou = self.model.s_ou as usize;
        let mut acc = vec![0_i64; self.cols_used];
        for t in 0..8u32 {
            let plane_t = dac::bit_plane(input, t);
            if plane_t.iter().all(|&v| v == 0) {
                continue;
            }
            for (b, cur) in self.currents.iter().enumerate() {
                let shift = t + b as u32;
                for (j, a) in acc.iter_mut().enumerate() {
                    let mut sum = 0_i64;
                    for u in 0..self.units {
                        let base = u * s_ou;
                        let mut current = 0.0;
                        let mut activated = 0usize;
                        for r in base..(base + s_ou).min(self.rows_used) {
                            if plane_t[r] != 0 {
                                current += cur[r * self.cols_used + j];
                                activated += 1;
                            }
                        }
                        sum += self.model.count(current, activated) as i64;
                    }
                    *a += adc.sample_exact(sum) << shift;
                }
            }
        }
        let offset = 1_i64 << (self.weight_bits - 1);
        let correction = offset * dac::input_sum(input);
        for a in &mut acc {
            *a -= correction;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_block(rng: &mut SmallRng, rows: usize, cols: usize) -> Vec<Vec<i32>> {
        (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-127..=127)).collect())
            .collect()
    }

    #[test]
    fn zero_deviation_readout_is_exact() {
        // With dev = 0 every sampled resistance sits at its corner, the
        // per-unit counts resolve exactly, and the full pipeline
        // reproduces the ideal crossbar bit for bit.
        let mut rng = SmallRng::seed_from_u64(1);
        let adc = Adc::new(10);
        for &(rows, cols) in &[(1usize, 1usize), (7, 5), (36, 32), (108, 64)] {
            let w = random_block(&mut rng, rows, cols);
            let shape = XbarShape::new(rows.next_power_of_two().max(32) as u32, cols as u32);
            let xb = Crossbar::program(shape, &w, 8);
            let input: Vec<u8> = (0..rows).map(|_| rng.gen()).collect();
            let vc = VariedCrossbar::sample(&xb, &VariationModel::ideal(), 7);
            assert_eq!(vc.mvm(&input, &adc), xb.mvm(&input, &adc), "{rows}x{cols}");
        }
    }

    #[test]
    fn packed_matches_scalar_reference() {
        let mut rng = SmallRng::seed_from_u64(2);
        let adc = Adc::new(10);
        let model = VariationModel::hypermetric();
        for seed in 0..8u64 {
            let rows = rng.gen_range(1..=108);
            let cols = rng.gen_range(1..=64);
            let w = random_block(&mut rng, rows, cols);
            let xb = Crossbar::program(XbarShape::new(108, 64), &w, 8);
            let vc = VariedCrossbar::sample(&xb, &model, seed);
            let input: Vec<u8> = (0..rows).map(|_| rng.gen()).collect();
            assert_eq!(
                vc.mvm(&input, &adc),
                vc.mvm_scalar(&input, &adc),
                "seed {seed} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = random_block(&mut rng, 16, 8);
        let xb = Crossbar::program(XbarShape::square(32), &w, 8);
        let input: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
        let adc = Adc::new(10);
        let model = VariationModel::hypermetric();
        let a = VariedCrossbar::sample(&xb, &model, 42);
        let b = VariedCrossbar::sample(&xb, &model, 42);
        assert_eq!(a.mvm(&input, &adc), b.mvm(&input, &adc));
        let c = VariedCrossbar::sample(&xb, &model, 43);
        // Different seed draws different devices (overwhelmingly likely
        // to change at least one output with 16 active rows).
        assert_ne!(a.mvm(&[255; 16], &adc), c.mvm(&[255; 16], &adc));
    }

    #[test]
    fn operation_unit_sizes_all_work() {
        let mut rng = SmallRng::seed_from_u64(4);
        let w = random_block(&mut rng, 21, 6);
        let xb = Crossbar::program(XbarShape::square(32), &w, 8);
        let input: Vec<u8> = (0..21).map(|_| rng.gen()).collect();
        let adc = Adc::new(10);
        for s_ou in [1u32, 2, 4, 8] {
            let model = VariationModel {
                s_ou,
                ..VariationModel::hypermetric()
            };
            let vc = VariedCrossbar::sample(&xb, &model, 5);
            assert_eq!(
                vc.mvm(&input, &adc),
                vc.mvm_scalar(&input, &adc),
                "s_ou {s_ou}"
            );
            // And the exact corner stays exact at every unit size.
            let vi = VariedCrossbar::sample(&xb, &model.with_deviation_scale(0.0), 5);
            assert_eq!(vi.mvm(&input, &adc), xb.mvm(&input, &adc), "s_ou {s_ou}");
        }
    }

    #[test]
    fn deviation_scale_and_exactness_flags() {
        let m = VariationModel::hypermetric();
        assert!(!m.is_exact());
        assert!(m.with_deviation_scale(0.0).is_exact());
        let half = m.with_deviation_scale(0.5);
        assert_eq!(half.dev_on, m.dev_on * 0.5);
        assert_eq!(half.dev_off, m.dev_off * 0.5);
        assert_eq!(half.r_on, m.r_on);
        assert!(VariationModel::ideal().is_exact());
    }

    #[test]
    fn table_size_matches_layout() {
        let w = vec![vec![1; 6]; 21];
        let xb = Crossbar::program(XbarShape::square(32), &w, 8);
        let vc = VariedCrossbar::sample(&xb, &VariationModel::hypermetric(), 0);
        // 8 planes · 6 cols · ⌈21/4⌉ = 6 units · 16 patterns.
        assert_eq!(vc.table_bytes(), 8 * 6 * 6 * 16);
        assert_eq!(vc.used(), (21, 6));
    }

    #[test]
    fn reference_equal_to_device_matches_sample_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(9);
        let w = random_block(&mut rng, 24, 12);
        let xb = Crossbar::program(XbarShape::square(32), &w, 8);
        let input: Vec<u8> = (0..24).map(|_| rng.gen()).collect();
        let adc = Adc::new(10);
        let m = VariationModel::hypermetric();
        let a = VariedCrossbar::sample(&xb, &m, 17);
        let b = VariedCrossbar::sample_with_reference(&xb, &m, &m, 17);
        assert_eq!(a.mvm(&input, &adc), b.mvm(&input, &adc));
    }

    #[test]
    fn stale_reference_miscounts_and_recalibration_recovers() {
        // A drifted population (all resistances grown 40%) read against
        // the factory reference model systematically under-counts; a
        // recalibrated reference (the drifted model itself) restores the
        // readout to the in-family accuracy of an ordinary draw.
        let mut rng = SmallRng::seed_from_u64(10);
        let w = random_block(&mut rng, 48, 16);
        let xb = Crossbar::program(XbarShape::square(64), &w, 8);
        let input = vec![255u8; 48];
        let adc = Adc::new(10);
        let factory = VariationModel::hypermetric();
        let drifted = VariationModel {
            r_on: factory.r_on * 1.4,
            r_off: factory.r_off * 1.4,
            ..factory
        };
        let ideal = {
            let exact = VariedCrossbar::sample(&xb, &factory.with_deviation_scale(0.0), 0);
            exact.mvm(&input, &adc)
        };
        let err = |out: &[i64]| -> i64 { out.iter().zip(&ideal).map(|(a, b)| (a - b).abs()).sum() };
        let stale = VariedCrossbar::sample_with_reference(&xb, &drifted, &factory, 17);
        let recal = VariedCrossbar::sample_with_reference(&xb, &drifted, &drifted, 17);
        let stale_err = err(&stale.mvm(&input, &adc));
        let recal_err = err(&recal.mvm(&input, &adc));
        assert!(
            stale_err > 4 * recal_err.max(1),
            "stale readout ({stale_err}) should dwarf recalibrated ({recal_err})"
        );
    }

    #[test]
    #[should_panic]
    fn reference_must_share_unit_size() {
        let xb = Crossbar::program(XbarShape::square(32), &[vec![1]], 8);
        let device = VariationModel::hypermetric();
        let reference = VariationModel { s_ou: 8, ..device };
        let _ = VariedCrossbar::sample_with_reference(&xb, &device, &reference, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_unit_size() {
        let xb = Crossbar::program(XbarShape::square(32), &[vec![1]], 8);
        let model = VariationModel {
            s_ou: 3,
            ..VariationModel::hypermetric()
        };
        let _ = VariedCrossbar::sample(&xb, &model, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_multi_level_cells() {
        let xb = Crossbar::program_with_cells(XbarShape::square(32), &[vec![1]], 8, 2);
        let _ = VariedCrossbar::sample(&xb, &VariationModel::hypermetric(), 0);
    }
}
