//! The paper's crossbar-utilization model (Eq. 4) and mapping footprints.
//!
//! Mapping scheme (paper Fig. 7): a layer's weights unfold into a
//! `Cin·k² × Cout` matrix; each kernel (one column slice of `k²` rows for
//! one input channel) goes onto a single crossbar column segment so each
//! crossbar stores `⌊r/k²⌋` kernels per column and `c` kernels across.
//! A layer therefore occupies a grid of
//! `⌈Cin/⌊r/k²⌋⌉ × ⌈Cout/c⌉` crossbars and its *crossbar-level* utilization
//! is Eq. 4:
//!
//! ```text
//! u = (Cin · k² · Cout) / (r · ⌈Cin/⌊r/k²⌋⌉ · c · ⌈Cout/c⌉)
//! ```
//!
//! One generalization beyond the paper: when a single kernel is taller than
//! the crossbar (`k² > r`, e.g. ResNet's 7×7 stem on a 32-row crossbar,
//! where Eq. 4's floor would be zero) the kernel is split vertically across
//! `⌈k²/r⌉` crossbars, the natural extension of the same scheme.

use crate::geometry::XbarShape;
use autohet_dnn::Layer;
use serde::{Deserialize, Serialize};

/// How one layer lands on an array of crossbars of a given shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// The crossbar shape this footprint was computed for.
    pub shape: XbarShape,
    /// Kernels stacked per crossbar column: `⌊r/k²⌋` (0 when the kernel is
    /// taller than the crossbar and had to be split).
    pub kernels_per_column: u32,
    /// Crossbar-grid height: `⌈Cin/⌊r/k²⌋⌉` (or `Cin·⌈k²/r⌉` when split).
    pub xb_rows: u32,
    /// Crossbar-grid width: `⌈Cout/c⌉`.
    pub xb_cols: u32,
    /// Weight-holding cells: `Cin · k² · Cout`.
    pub used_cells: u64,
}

impl Footprint {
    /// Total crossbars the layer occupies.
    pub fn total_xbars(&self) -> u64 {
        self.xb_rows as u64 * self.xb_cols as u64
    }

    /// Cells provisioned by the occupied crossbars.
    pub fn provisioned_cells(&self) -> u64 {
        self.total_xbars() * self.shape.cells()
    }

    /// Crossbar-level utilization, the paper's Eq. 4. Always in `(0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used_cells as f64 / self.provisioned_cells() as f64
    }

    /// Utilization charged against an explicit allocation (e.g. after tile
    /// round-up or tile sharing): `used / (allocated · r · c)`.
    pub fn utilization_over(&self, allocated_xbars: u64) -> f64 {
        debug_assert!(allocated_xbars >= self.total_xbars());
        self.used_cells as f64 / (allocated_xbars * self.shape.cells()) as f64
    }
}

/// Compute the mapping footprint of `layer` on crossbars of `shape`.
///
/// ```
/// use autohet_dnn::Layer;
/// use autohet_xbar::{utilization::footprint, XbarShape};
///
/// // The paper's Fig. 2(a): Cin=3, Cout=4, 3×3 kernels on 32×32 → 10.5%.
/// let layer = Layer::conv(0, 3, 4, 3, 1, 1, 32);
/// let fp = footprint(&layer, XbarShape::square(32));
/// assert_eq!(fp.total_xbars(), 1);
/// assert!((fp.utilization() - 0.10546875).abs() < 1e-9);
/// ```
pub fn footprint(layer: &Layer, shape: XbarShape) -> Footprint {
    let k2 = layer.kernel_elems() as u64;
    let r = shape.rows as u64;
    let c = shape.cols as u64;
    let cin = layer.in_channels as u64;
    let cout = layer.out_channels as u64;

    if layer.kind == autohet_dnn::LayerKind::DepthwiseConv {
        // Diagonal packing: kernels share neither rows (each convolves its
        // own channel, so wordlines cannot be reused) nor columns, so a
        // crossbar holds at most min(⌊r/k²⌋, c) kernels — the worst-case
        // workload for wide crossbars. Each crossbar drives its own
        // wordlines (grid is `xbars × 1` for counting purposes).
        let per_xb = (r / k2).min(c);
        let xbars = if per_xb == 0 {
            cin * k2.div_ceil(r) // kernel taller than the crossbar: split
        } else {
            cin.div_ceil(per_xb)
        };
        return Footprint {
            shape,
            kernels_per_column: per_xb.min(u32::MAX as u64) as u32,
            xb_rows: xbars as u32,
            xb_cols: 1,
            used_cells: cin * k2,
        };
    }

    let (kernels_per_column, xb_rows) = if k2 <= r {
        let kpc = r / k2;
        (kpc as u32, cin.div_ceil(kpc) as u32)
    } else {
        // Kernel taller than the crossbar: split vertically.
        (0, (cin * k2.div_ceil(r)) as u32)
    };
    let xb_cols = cout.div_ceil(c) as u32;

    Footprint {
        shape,
        kernels_per_column,
        xb_rows,
        xb_cols,
        used_cells: cin * k2 * cout,
    }
}

/// Convenience: Eq. 4 utilization of `layer` on `shape`.
pub fn utilization(layer: &Layer, shape: XbarShape) -> f64 {
    footprint(layer, shape).utilization()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autohet_dnn::Layer;

    #[test]
    fn paper_fig2_layer1_is_10_5_percent() {
        // Fig. 2(a): Cin=3, Cout=4, 3×3 kernels on a 32×32 crossbar.
        let l = Layer::conv(0, 3, 4, 3, 1, 1, 32);
        let fp = footprint(&l, XbarShape::square(32));
        assert_eq!(fp.kernels_per_column, 3);
        assert_eq!((fp.xb_rows, fp.xb_cols), (1, 1));
        assert!((fp.utilization() - 0.10546875).abs() < 1e-9); // 108/1024
    }

    #[test]
    fn paper_fig2_layer2_is_62_5_percent() {
        // Fig. 2(b): Cin=32, Cout=20, 1×1 kernels on a 32×32 crossbar.
        let l = Layer::conv(1, 32, 20, 1, 1, 0, 32);
        assert!((utilization(&l, XbarShape::square(32)) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn paper_fig5_utilization_on_64_is_27_over_32() {
        // Fig. 5: 128 kernels of 3×3×12 on 64×64 crossbars.
        let l = Layer::conv(0, 12, 128, 3, 1, 1, 16);
        let fp = footprint(&l, XbarShape::square(64));
        assert_eq!(fp.kernels_per_column, 7);
        assert_eq!((fp.xb_rows, fp.xb_cols), (2, 2));
        assert!((fp.utilization() - 27.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig5_on_128_occupies_one_crossbar() {
        // Same layer on 128×128: fits one crossbar (util 27/128 in the
        // paper is tile-level with 4 crossbars/tile; see accel tests).
        let l = Layer::conv(0, 12, 128, 3, 1, 1, 16);
        let fp = footprint(&l, XbarShape::square(128));
        assert_eq!(fp.total_xbars(), 1);
        assert!((fp.utilization() - 27.0 / 32.0).abs() < 1e-12);
        assert!((fp.utilization_over(4) - 27.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn paper_sec33_vgg16_layer4_83_7_to_100_percent() {
        // §3.3: k=3, Cin=128, Cout=128 → 83.7% on 32×32, 100% on 36×32.
        let l = Layer::conv(3, 128, 128, 3, 1, 1, 16);
        let sq = utilization(&l, XbarShape::square(32));
        assert!((sq - 0.8372).abs() < 1e-3, "got {sq}");
        let rect = utilization(&l, XbarShape::new(36, 32));
        assert!((rect - 1.0).abs() < 1e-12, "got {rect}");
    }

    #[test]
    fn fc_layers_use_plain_matrix_tiling() {
        // FC 4096→1000 on 512×512: ⌈4096/512⌉ × ⌈1000/512⌉ = 8 × 2.
        let l = Layer::fc(13, 4096, 1000);
        let fp = footprint(&l, XbarShape::square(512));
        assert_eq!((fp.xb_rows, fp.xb_cols), (8, 2));
        let expect = (4096.0 * 1000.0) / (8.0 * 2.0 * 512.0 * 512.0);
        assert!((fp.utilization() - expect).abs() < 1e-12);
    }

    #[test]
    fn oversized_kernel_splits_vertically() {
        // ResNet stem: 7×7 (49 rows) kernels on 32-row crossbars →
        // each kernel spans ⌈49/32⌉ = 2 crossbars vertically.
        let l = Layer::conv(0, 3, 64, 7, 2, 3, 224);
        let fp = footprint(&l, XbarShape::square(32));
        assert_eq!(fp.kernels_per_column, 0);
        assert_eq!(fp.xb_rows, 6); // 3 channels × 2
        assert_eq!(fp.xb_cols, 2);
        let u = fp.utilization();
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn utilization_is_never_above_one() {
        for shape in crate::geometry::all_candidates() {
            for &(cin, cout, k) in &[
                (1usize, 1usize, 1usize),
                (3, 64, 3),
                (512, 512, 3),
                (2048, 1000, 1),
                (3, 64, 7),
            ] {
                let l = Layer::conv(0, cin, cout, k, 1, k / 2, 224);
                let u = utilization(&l, shape);
                assert!(
                    u > 0.0 && u <= 1.0 + 1e-12,
                    "u={u} for {shape} {cin},{cout},{k}"
                );
            }
        }
    }

    #[test]
    fn depthwise_utilization_collapses_on_wide_crossbars() {
        // 64-channel 3×3 depthwise: a 512×512 crossbar holds 56 kernels
        // diagonally (one column each), wasting ~99.8% of its cells, while
        // a 36×32 crossbar wastes far less — the layer class that makes
        // crossbar-level heterogeneity essential.
        let l = Layer::depthwise(0, 64, 3, 1, 1, 14);
        let wide = footprint(&l, XbarShape::square(512));
        let tall = footprint(&l, XbarShape::new(36, 32));
        assert!(wide.utilization() < 0.005, "wide {}", wide.utilization());
        assert!(tall.utilization() > 10.0 * wide.utilization());
        // Diagonal capacity: min(⌊512/9⌋, 512) = 56 kernels per crossbar.
        assert_eq!(wide.kernels_per_column, 56);
        assert_eq!(wide.total_xbars(), 64_u64.div_ceil(56));
        // 36×32: min(4, 32) = 4 kernels per crossbar → 16 crossbars.
        assert_eq!(tall.kernels_per_column, 4);
        assert_eq!(tall.total_xbars(), 16);
    }

    #[test]
    fn depthwise_used_cells_count_single_kernels() {
        let l = Layer::depthwise(0, 32, 3, 1, 1, 8);
        let fp = footprint(&l, XbarShape::square(64));
        assert_eq!(fp.used_cells, 32 * 9);
        assert!(fp.utilization() > 0.0 && fp.utilization() <= 1.0);
    }

    #[test]
    fn rectangle_beats_square_for_3x3_kernels() {
        // The whole point of RXBs (§3.3): multiples-of-9 heights waste no
        // rows on 3×3 kernels.
        let l = Layer::conv(0, 64, 64, 3, 1, 1, 16);
        assert!(utilization(&l, XbarShape::new(72, 64)) > utilization(&l, XbarShape::square(64)));
    }
}
