//! Digital-to-analog conversion of inputs.
//!
//! The paper uses 1-bit DACs (§4.1): an 8-bit activation is streamed over
//! 8 compute cycles, one binary voltage plane per cycle, and the digital
//! shift-and-add stage weighs each cycle's ADC samples by `2^cycle`. This
//! module extracts those bit planes.

/// Bit `bit` (0 = LSB) of one activation, as the binary wordline voltage.
#[inline]
pub fn input_bit(x: u8, bit: u32) -> u8 {
    debug_assert!(bit < 8);
    (x >> bit) & 1
}

/// The bit-`bit` voltage plane for a whole input vector.
pub fn bit_plane(inputs: &[u8], bit: u32) -> Vec<u8> {
    inputs.iter().map(|&x| input_bit(x, bit)).collect()
}

/// Digital sum of an input vector; the offset-subtraction unit uses this to
/// remove the signed-weight encoding bias (see [`crate::crossbar`]).
pub fn input_sum(inputs: &[u8]) -> i64 {
    inputs.iter().map(|&x| x as i64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_reassemble_value() {
        for x in [0u8, 1, 37, 128, 200, 255] {
            let v: u32 = (0..8).map(|b| (input_bit(x, b) as u32) << b).sum();
            assert_eq!(v, x as u32);
        }
    }

    #[test]
    fn bit_plane_is_elementwise() {
        let p = bit_plane(&[0b1010, 0b0001, 0b1111], 1);
        assert_eq!(p, vec![1, 0, 1]);
    }

    #[test]
    fn input_sum_matches_manual() {
        assert_eq!(input_sum(&[1, 2, 255]), 258);
        assert_eq!(input_sum(&[]), 0);
    }
}
