//! Analog-to-digital converter model.
//!
//! Each bitline's summed current is sampled by an ADC of `bits` resolution.
//! With 1-bit cells and 1-bit (binary) input voltages, an ideal bitline
//! carries an integer number of unit currents, so a sufficiently wide ADC
//! is *exact*; resolution only matters when the active-row count exceeds
//! the ADC range (clipping) or analog noise perturbs the sum (rounding).
//! The paper fixes 10 bits so every candidate crossbar (tallest: 576 rows)
//! converts losslessly (§4.1).

use serde::{Deserialize, Serialize};

/// An ideal uniform quantizer with saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adc {
    bits: u32,
}

impl Adc {
    /// Build an ADC of the given resolution (2..=16 bits).
    pub fn new(bits: u32) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "unsupported ADC resolution {bits}"
        );
        Adc { bits }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable level.
    pub fn max_level(&self) -> i64 {
        (1_i64 << self.bits) - 1
    }

    /// Sample a (non-negative) analog bitline value: round to the nearest
    /// level and saturate at the range limits.
    pub fn sample(&self, analog: f64) -> i64 {
        let v = analog.round() as i64;
        v.clamp(0, self.max_level())
    }

    /// Sample an already-integral bitline sum (the bit-packed fast path):
    /// saturation only, no rounding. Bit-identical to `sample(v as f64)`
    /// for every `v` a crossbar bitline can produce (far below 2⁵³).
    #[inline]
    pub fn sample_exact(&self, v: i64) -> i64 {
        v.clamp(0, self.max_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_in_range_integers() {
        let adc = Adc::new(10);
        for v in [0_i64, 1, 17, 576, 1023] {
            assert_eq!(adc.sample(v as f64), v);
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let adc = Adc::new(10);
        assert_eq!(adc.sample(1024.0), 1023);
        assert_eq!(adc.sample(5000.0), 1023);
        assert_eq!(adc.sample(-3.0), 0);
    }

    #[test]
    fn rounds_noisy_values_to_nearest() {
        let adc = Adc::new(8);
        assert_eq!(adc.sample(41.4), 41);
        assert_eq!(adc.sample(41.6), 42);
    }

    #[test]
    fn max_level_matches_bits() {
        assert_eq!(Adc::new(10).max_level(), 1023);
        assert_eq!(Adc::new(8).max_level(), 255);
    }

    #[test]
    #[should_panic]
    fn rejects_absurd_resolution() {
        let _ = Adc::new(40);
    }
}
