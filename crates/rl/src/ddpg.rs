//! Deep Deterministic Policy Gradient (the paper's agent, §3.2).
//!
//! Actor `μ(s) ∈ (0,1)` (sigmoid head) and critic `Q(s, a)` with Polyak-
//! averaged target copies. Per train step, a minibatch from the experience
//! pool drives:
//!
//! - critic regression toward the TD target
//!   `y = r + γ·Q'(s', μ'(s'))·(1 − done)`,
//! - the deterministic policy gradient for the actor:
//!   ascend `Q(s, μ(s))` by backpropagating `∂Q/∂a` through the actor,
//! - soft target updates `θ' ← τθ + (1−τ)θ'`.
//!
//! The continuous action is discretized by the environment (the AutoHet
//! search maps `(0,1)` onto the crossbar-candidate index, the same recipe
//! HAQ-style RL-for-architecture works use).

use crate::nn::{Activation, Adam, Mlp};
use crate::noise::OuNoise;
use crate::replay::{Experience, ReplayBuffer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Agent hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// State vector dimension (the paper's Eq. 1 state is 10-dim).
    pub state_dim: usize,
    /// Hidden width of both MLPs.
    pub hidden: usize,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Soft-update coefficient.
    pub tau: f64,
    /// Minibatch size.
    pub batch: usize,
    /// Experience-pool capacity.
    pub pool: usize,
    /// RNG seed (weights, sampling, exploration).
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            state_dim: 10,
            hidden: 64,
            actor_lr: 1e-3,
            critic_lr: 2e-3,
            gamma: 0.99,
            tau: 0.01,
            batch: 64,
            pool: 4096,
            seed: 0,
        }
    }
}

/// Diagnostics from one training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean squared TD error of the critic batch.
    pub critic_loss: f64,
    /// Mean `Q(s, μ(s))` of the batch (the actor objective).
    pub actor_q: f64,
}

/// The DDPG agent.
///
/// ```
/// use autohet_rl::{Ddpg, DdpgConfig, Experience, OuNoise};
///
/// let mut agent = Ddpg::new(DdpgConfig { state_dim: 2, batch: 8, ..DdpgConfig::default() });
/// let mut noise = OuNoise::new(0.3, 0.99, 0.02);
/// let state = vec![0.1, 0.9];
/// let action = agent.act_noisy(&state, &mut noise);
/// assert!((0.0..=1.0).contains(&action));
/// agent.remember(Experience {
///     state: state.clone(),
///     next_state: state,
///     action,
///     reward: 1.0,
///     done: true,
/// });
/// assert!(agent.train_step().is_none()); // pool smaller than one batch
/// ```
#[derive(Debug, Clone)]
pub struct Ddpg {
    cfg: DdpgConfig,
    actor: Mlp,
    critic: Mlp,
    actor_target: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    /// The experience pool (public so drivers can inspect fill level).
    pub replay: ReplayBuffer,
    rng: SmallRng,
    scratch: TrainScratch,
}

/// Reusable flat batch buffers for [`Ddpg::train_step`] — the minibatch
/// is stacked batch-major once per pass instead of cloning per sample.
#[derive(Debug, Clone, Default)]
struct TrainScratch {
    /// Stacked states / next-states (`batch × state_dim`).
    states: Vec<f64>,
    /// Stacked critic inputs (`batch × (state_dim + 1)`).
    critic_in: Vec<f64>,
    /// TD targets (`batch`).
    targets: Vec<f64>,
    /// Stacked output gradients.
    grads: Vec<f64>,
    /// Per-sample `∂Q/∂a` extracted from the critic's input gradient.
    dq_da: Vec<f64>,
}

impl Ddpg {
    /// Build an agent; target networks start as exact copies.
    pub fn new(cfg: DdpgConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xDD9C);
        let actor = Mlp::new(
            &[cfg.state_dim, cfg.hidden, cfg.hidden, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let critic = Mlp::new(
            &[cfg.state_dim + 1, cfg.hidden, cfg.hidden, 1],
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        Ddpg {
            actor_target: actor.clone(),
            critic_target: critic.clone(),
            actor_opt: Adam::new(cfg.actor_lr),
            critic_opt: Adam::new(cfg.critic_lr),
            replay: ReplayBuffer::new(cfg.pool),
            actor,
            critic,
            rng,
            cfg,
            scratch: TrainScratch::default(),
        }
    }

    /// Agent configuration.
    pub fn config(&self) -> &DdpgConfig {
        &self.cfg
    }

    /// Deterministic action `μ(s) ∈ (0,1)`.
    pub fn act(&mut self, state: &[f64]) -> f64 {
        self.actor.forward(state)[0]
    }

    /// Exploratory action: `clamp(μ(s) + OU noise, 0, 1)`.
    pub fn act_noisy(&mut self, state: &[f64], noise: &mut OuNoise) -> f64 {
        let a = self.act(state) + noise.sample(&mut self.rng);
        a.clamp(0.0, 1.0)
    }

    /// Deterministic actions for a stacked batch of states (batch-major
    /// `batch × state_dim`): one feature-major GEMM through the actor
    /// instead of `batch` matvecs. Each output is bit-identical to a
    /// per-state [`Ddpg::act`] call.
    pub fn act_batch(&mut self, states: &[f64], batch: usize) -> &[f64] {
        self.actor.forward_batch_infer(states, batch)
    }

    /// Exploratory actions for a stacked batch with one OU process per
    /// lane: a single batched actor pass, then per-lane noise drawn from
    /// the agent's RNG in ascending lane order — the fixed interleave
    /// that keeps seeded vectorized searches reproducible. With one lane
    /// the output is bit-identical to [`Ddpg::act_noisy`] (same forward
    /// values, same two RNG draws).
    pub fn act_noisy_batch(&mut self, states: &[f64], noises: &mut [OuNoise], out: &mut Vec<f64>) {
        let b = noises.len();
        self.actor.forward_batch_infer(states, b);
        out.clear();
        for (mu, n) in self.actor.last_output().iter().zip(noises.iter_mut()) {
            out.push((mu + n.sample(&mut self.rng)).clamp(0.0, 1.0));
        }
    }

    /// One OU draw from the agent's RNG — the same generator
    /// [`Ddpg::act_noisy`] consumes. Vectorized drivers combine this
    /// with [`Ddpg::act_batch`] when a lockstep group mixes warm-up and
    /// actor-driven lanes but must keep the sequential draw order.
    pub fn noise_sample(&mut self, noise: &mut OuNoise) -> f64 {
        noise.sample(&mut self.rng)
    }

    /// Store one transition.
    pub fn remember(&mut self, e: Experience) {
        self.replay.push(e);
    }

    /// Critic value for an explicit state-action pair.
    pub fn q_value(&mut self, state: &[f64], action: f64) -> f64 {
        let mut input = state.to_vec();
        input.push(action);
        self.critic.forward(&input)[0]
    }

    /// One minibatch update of critic, actor and targets. Returns `None`
    /// until the pool holds at least one batch.
    ///
    /// The whole pass is batched over the minibatch through the GEMM
    /// kernels (DESIGN.md §9): one target-network evaluation, one critic
    /// regression and one policy-gradient pass, each a single
    /// forward/backward over the stacked batch. Gradient accumulation
    /// keeps ascending batch order, so every update is bit-identical to
    /// the per-sample formulation — seeded searches are unchanged.
    pub fn train_step(&mut self) -> Option<TrainStats> {
        if self.replay.len() < self.cfg.batch {
            return None;
        }
        // Borrow the sampled transitions in place — the networks and the
        // pool are disjoint fields, so nothing needs cloning.
        let batch = self.replay.sample(self.cfg.batch, &mut self.rng);
        let n = batch.len() as f64;
        let b = batch.len();
        let sd = self.cfg.state_dim;
        let mut sc = std::mem::take(&mut self.scratch);

        // ---- Critic: regress toward the TD target.
        // Targets from the target networks, one batched pass each.
        sc.states.clear();
        for e in &batch {
            sc.states.extend_from_slice(&e.next_state);
        }
        self.actor_target.forward_batch_infer(&sc.states, b);
        sc.critic_in.clear();
        for (e, a_next) in batch.iter().zip(self.actor_target.last_output()) {
            sc.critic_in.extend_from_slice(&e.next_state);
            sc.critic_in.push(*a_next);
        }
        let q_next = self.critic_target.forward_batch_infer(&sc.critic_in, b);
        sc.targets.clear();
        for (e, &qn) in batch.iter().zip(q_next) {
            let y = e.reward + if e.done { 0.0 } else { self.cfg.gamma * qn };
            sc.targets.push(y);
        }
        sc.critic_in.clear();
        for e in &batch {
            sc.critic_in.extend_from_slice(&e.state);
            sc.critic_in.push(e.action);
        }
        self.critic.zero_grad();
        let q = self.critic.forward_batch(&sc.critic_in, b);
        let mut critic_loss = 0.0;
        sc.grads.clear();
        for (&q, &y) in q.iter().zip(&sc.targets) {
            let err = q - y;
            critic_loss += err * err;
            sc.grads.push(2.0 * err);
        }
        critic_loss /= n;
        self.critic.backward_batch(&sc.grads);
        self.critic.adam_step(&mut self.critic_opt, n);

        // ---- Actor: ascend Q(s, μ(s)).
        self.actor.zero_grad();
        sc.states.clear();
        for e in &batch {
            sc.states.extend_from_slice(&e.state);
        }
        self.actor.forward_batch(&sc.states, b);
        sc.critic_in.clear();
        for (e, a) in batch.iter().zip(self.actor.last_output()) {
            sc.critic_in.extend_from_slice(&e.state);
            sc.critic_in.push(*a);
        }
        let q = self.critic.forward_batch_infer(&sc.critic_in, b);
        let actor_q = q.iter().sum::<f64>() / n;
        // dQ/d(input); gradient ascent on Q ⇒ loss = -Q. The critic's
        // parameter gradients would be discarded, so propagate the input
        // gradient only.
        sc.grads.clear();
        sc.grads.resize(b, -1.0);
        let din = self.critic.backward_input_only_batch(&sc.grads);
        sc.dq_da.clear();
        sc.dq_da.extend(din.chunks(sd + 1).map(|d| d[sd]));
        self.actor.backward_batch(&sc.dq_da);
        self.actor.adam_step(&mut self.actor_opt, n);

        // ---- Soft target updates.
        self.actor_target
            .soft_update_from(&self.actor, self.cfg.tau);
        self.critic_target
            .soft_update_from(&self.critic, self.cfg.tau);

        self.scratch = sc;
        Some(TrainStats {
            critic_loss,
            actor_q,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_bounded() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 3,
            ..DdpgConfig::default()
        });
        let mut noise = OuNoise::new(0.8, 1.0, 0.0);
        for i in 0..50 {
            let s = vec![i as f64 * 0.1, -1.0, 2.0];
            let a = agent.act(&s);
            assert!((0.0..=1.0).contains(&a));
            let an = agent.act_noisy(&s, &mut noise);
            assert!((0.0..=1.0).contains(&an));
        }
    }

    #[test]
    fn train_needs_a_full_batch() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 2,
            batch: 8,
            ..DdpgConfig::default()
        });
        assert!(agent.train_step().is_none());
        for i in 0..8 {
            agent.remember(Experience {
                state: vec![i as f64, 0.0],
                next_state: vec![i as f64 + 1.0, 0.0],
                action: 0.5,
                reward: 0.1,
                done: i == 7,
            });
        }
        assert!(agent.train_step().is_some());
    }

    #[test]
    fn solves_a_continuous_bandit() {
        // One-step episodes, reward 1 − (a − 0.7)²: the actor must move
        // its deterministic action toward 0.7.
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 1,
            hidden: 32,
            batch: 32,
            actor_lr: 3e-3,
            critic_lr: 5e-3,
            seed: 42,
            ..DdpgConfig::default()
        });
        let mut noise = OuNoise::new(0.4, 0.995, 0.02);
        let state = vec![1.0];
        for _ in 0..600 {
            let a = agent.act_noisy(&state, &mut noise);
            let r = 1.0 - (a - 0.7) * (a - 0.7);
            agent.remember(Experience {
                state: state.clone(),
                next_state: state.clone(),
                action: a,
                reward: r,
                done: true,
            });
            noise.end_episode();
            agent.train_step();
        }
        let a = agent.act(&state);
        assert!((a - 0.7).abs() < 0.15, "converged to {a}");
    }

    #[test]
    fn critic_loss_decreases_on_fixed_data() {
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: 2,
            batch: 16,
            seed: 7,
            ..DdpgConfig::default()
        });
        for i in 0..64 {
            let s = vec![(i % 8) as f64 / 8.0, ((i / 8) % 8) as f64 / 8.0];
            agent.remember(Experience {
                state: s.clone(),
                next_state: s.clone(),
                action: (i % 4) as f64 / 4.0,
                reward: s[0] * 0.5,
                done: true,
            });
        }
        let first = agent.train_step().unwrap().critic_loss;
        let mut last = first;
        for _ in 0..200 {
            last = agent.train_step().unwrap().critic_loss;
        }
        assert!(last < first, "critic loss {first} → {last}");
    }

    #[test]
    fn act_batch_matches_per_state_act() {
        let mut a = Ddpg::new(DdpgConfig {
            state_dim: 4,
            seed: 11,
            ..DdpgConfig::default()
        });
        let mut b = a.clone();
        let states: Vec<Vec<f64>> = (0..7)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f64).sin()).collect())
            .collect();
        let flat: Vec<f64> = states.iter().flatten().copied().collect();
        let batched = a.act_batch(&flat, 7).to_vec();
        for (s, &mu) in states.iter().zip(&batched) {
            assert_eq!(b.act(s).to_bits(), mu.to_bits());
        }
    }

    #[test]
    fn act_noisy_batch_single_lane_matches_act_noisy() {
        let mk = || {
            Ddpg::new(DdpgConfig {
                state_dim: 3,
                seed: 5,
                ..DdpgConfig::default()
            })
        };
        let (mut a, mut b) = (mk(), mk());
        let mut na = [OuNoise::new(0.4, 0.97, 0.02)];
        let mut nb = OuNoise::new(0.4, 0.97, 0.02);
        let mut out = Vec::new();
        for i in 0..25 {
            let s = vec![i as f64 * 0.07, 0.5, -0.2];
            a.act_noisy_batch(&s, &mut na, &mut out);
            let exp = b.act_noisy(&s, &mut nb);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].to_bits(), exp.to_bits());
        }
    }

    #[test]
    fn act_noisy_batch_draws_noise_in_lane_order() {
        // A two-lane batched call consumes the agent RNG exactly like
        // per-lane draws in ascending order: mu from the batched actor
        // pass plus one noise_sample per lane.
        let mk = || {
            Ddpg::new(DdpgConfig {
                state_dim: 2,
                seed: 9,
                ..DdpgConfig::default()
            })
        };
        let (mut a, mut b) = (mk(), mk());
        let noise = || OuNoise::new(0.3, 1.0, 0.0);
        let mut na = [noise(), noise()];
        let mut nb = [noise(), noise()];
        let mut out = Vec::new();
        let flat = [0.2, 0.8, -0.1, 0.4];
        a.act_noisy_batch(&flat, &mut na, &mut out);
        let mus = b.act_batch(&flat, 2).to_vec();
        for (l, &mu) in mus.iter().enumerate() {
            let exp = (mu + b.noise_sample(&mut nb[l])).clamp(0.0, 1.0);
            assert_eq!(out[l].to_bits(), exp.to_bits());
        }
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let run = || {
            let mut agent = Ddpg::new(DdpgConfig {
                state_dim: 1,
                seed: 3,
                batch: 4,
                ..DdpgConfig::default()
            });
            let mut noise = OuNoise::new(0.3, 0.99, 0.0);
            let mut trace = Vec::new();
            for i in 0..20 {
                let s = vec![i as f64 / 20.0];
                let a = agent.act_noisy(&s, &mut noise);
                trace.push(a);
                agent.remember(Experience {
                    state: s.clone(),
                    next_state: s,
                    action: a,
                    reward: a,
                    done: true,
                });
                agent.train_step();
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
