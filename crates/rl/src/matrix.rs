//! Minimal dense matrix for the NN substrate.
//!
//! Row-major `f64`; just the operations the MLP needs (matrix-vector
//! products in both orientations and outer-product accumulation).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Uniform random matrix in `[-limit, limit]` (He/Xavier-style init).
    pub fn random<R: Rng>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Flat data view (for optimizers / soft updates).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = A·x` (length `rows`).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// `y = Aᵀ·g` (length `cols`) — input-gradient propagation.
    pub fn matvec_t(&self, g: &[f64]) -> Vec<f64> {
        assert_eq!(g.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (r, &gr) in g.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, &a) in y.iter_mut().zip(row) {
                *yc += a * gr;
            }
        }
        y
    }

    /// `A += g ⊗ x` (outer product) — weight-gradient accumulation.
    pub fn add_outer(&mut self, g: &[f64], x: &[f64]) {
        assert_eq!(g.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for (r, &gr) in g.iter().enumerate() {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, &xv) in row.iter_mut().zip(x) {
                *a += gr * xv;
            }
        }
    }

    /// Set every element to zero.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let mut m = Matrix::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in (1..=6).enumerate() {
            m.data_mut()[i] = v as f64;
        }
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let mut m = Matrix::zeros(2, 3);
        for (i, v) in (1..=6).enumerate() {
            m.data_mut()[i] = v as f64;
        }
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 6.0);
        assert_eq!(m.get(1, 1), 8.0);
    }

    #[test]
    fn random_respects_limit_and_seed() {
        let mut r1 = SmallRng::seed_from_u64(1);
        let mut r2 = SmallRng::seed_from_u64(1);
        let a = Matrix::random(4, 4, 0.5, &mut r1);
        let b = Matrix::random(4, 4, 0.5, &mut r2);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn zero_clears() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut m = Matrix::random(3, 3, 1.0, &mut r);
        m.zero();
        assert!(m.data().iter().all(|&v| v == 0.0));
    }
}
