//! Minimal dense matrix for the NN substrate.
//!
//! Row-major `f64`; just the operations the MLP needs (matrix-vector
//! products in both orientations and outer-product accumulation).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Transpose `src` (`rows × cols`, row-major) into `dst` (`cols × rows`),
/// walking 8×8 tiles so both sides stay cache-resident. Pure data
/// movement — no arithmetic, so bit-exactness is trivial.
pub(crate) fn transpose_into(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const T: usize = 8;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + T).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + T).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Uniform random matrix in `[-limit, limit]` (He/Xavier-style init).
    pub fn random<R: Rng>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Flat data view (for optimizers / soft updates).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = A·x` (length `rows`).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// `y = Aᵀ·g` (length `cols`) — input-gradient propagation.
    pub fn matvec_t(&self, g: &[f64]) -> Vec<f64> {
        assert_eq!(g.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (r, &gr) in g.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, &a) in y.iter_mut().zip(row) {
                *yc += a * gr;
            }
        }
        y
    }

    /// `A += g ⊗ x` (outer product) — weight-gradient accumulation.
    pub fn add_outer(&mut self, g: &[f64], x: &[f64]) {
        assert_eq!(g.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for (r, &gr) in g.iter().enumerate() {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, &xv) in row.iter_mut().zip(x) {
                *a += gr * xv;
            }
        }
    }

    /// Set every element to zero.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    // ---- Batched (GEMM) kernels ----------------------------------------
    //
    // All three walk the weight matrix row-by-row in the outer loop so one
    // row stays hot across the whole minibatch, but every *element* of the
    // result is produced by the exact floating-point accumulation order of
    // the per-sample kernel above (k-ascending dots, r-ascending transpose
    // sums, s-ascending gradient accumulation) — so batched training is
    // bit-identical to a per-sample loop (DESIGN.md §9).

    /// `out[s] = A·x_s` for `batch` inputs stacked batch-major in `xs`
    /// (`batch × cols`); writes `batch × rows` into `out` (reusing its
    /// allocation, with `scratch` as the staging buffer).
    ///
    /// Internally the batch is staged feature-major so the hot loop is a
    /// broadcast-multiply over a contiguous sample vector — `batch`
    /// independent accumulator chains the compiler can vectorize, where
    /// `matvec`'s single serial dot cannot be. The staging transposes are
    /// pure data movement: every output element still accumulates its
    /// products from 0.0 in ascending-k order, exactly like `matvec`'s
    /// dot, so results are bit-identical to the per-sample call.
    pub fn matmul_xt(&self, xs: &[f64], batch: usize, out: &mut Vec<f64>, scratch: &mut Vec<f64>) {
        assert_eq!(xs.len(), batch * self.cols);
        out.clear();
        out.resize(batch * self.rows, 0.0);
        if batch == 1 {
            // Single sample: skip the staging round-trip.
            for (o, row) in out.iter_mut().zip(self.data.chunks(self.cols)) {
                *o = row.iter().zip(xs).map(|(a, b)| a * b).sum();
            }
            return;
        }
        scratch.clear();
        scratch.resize((self.cols + self.rows) * batch, 0.0);
        let (xt, yt) = scratch.split_at_mut(self.cols * batch);
        transpose_into(xs, batch, self.cols, xt);
        self.matmul_fm_core(xt, batch, yt);
        transpose_into(yt, self.rows, batch, out);
    }

    /// Feature-major GEMM: `yt = A·xt` where `xt` is `cols × batch` and
    /// `yt` comes out `rows × batch` (reusing its allocation). This is the
    /// layout the MLP keeps activations in between layers — no staging
    /// transposes. Each output element accumulates its products from 0.0
    /// in ascending-k order, exactly like `matvec`'s dot.
    pub fn matmul_fm(&self, xt: &[f64], batch: usize, yt: &mut Vec<f64>) {
        assert_eq!(xt.len(), batch * self.cols);
        yt.clear();
        yt.resize(batch * self.rows, 0.0);
        if batch == 1 {
            // Single sample (both layouts coincide): plain dots.
            for (o, row) in yt.iter_mut().zip(self.data.chunks_exact(self.cols)) {
                *o = row.iter().zip(xt).map(|(a, b)| a * b).sum();
            }
            return;
        }
        self.matmul_fm_core(xt, batch, yt);
    }

    /// `matmul_fm` on a pre-zeroed output slice.
    ///
    /// `chunks_exact` (sizes divide exactly by construction) lets the
    /// compiler vectorize the broadcast inner loop across the batch.
    fn matmul_fm_core(&self, xt: &[f64], batch: usize, yt: &mut [f64]) {
        for (row, y) in self
            .data
            .chunks_exact(self.cols)
            .zip(yt.chunks_exact_mut(batch))
        {
            for (&a, xk) in row.iter().zip(xt.chunks_exact(batch)) {
                for (yv, &xv) in y.iter_mut().zip(xk) {
                    *yv += a * xv;
                }
            }
        }
    }

    /// Feature-major transpose product: `din = Aᵀ·g` where `g` is
    /// `rows × batch` and `din` comes out `cols × batch`. Every element
    /// accumulates over `r` in ascending order, like `matvec_t`.
    pub fn matmul_t_fm(&self, g_fm: &[f64], batch: usize, din: &mut Vec<f64>) {
        assert_eq!(g_fm.len(), batch * self.rows);
        din.clear();
        din.resize(batch * self.cols, 0.0);
        if batch == 1 {
            for (row, &gr) in self.data.chunks_exact(self.cols).zip(g_fm) {
                for (dv, &a) in din.iter_mut().zip(row) {
                    *dv += a * gr;
                }
            }
            return;
        }
        for (row, g_r) in self
            .data
            .chunks_exact(self.cols)
            .zip(g_fm.chunks_exact(batch))
        {
            for (&a, d_c) in row.iter().zip(din.chunks_exact_mut(batch)) {
                for (dv, &gv) in d_c.iter_mut().zip(g_r) {
                    *dv += a * gv;
                }
            }
        }
    }

    /// `A += Σ_s g_s ⊗ x_s` with feature-major gradients (`rows × batch`)
    /// and batch-major inputs (`batch × cols`) — every element accumulates
    /// the samples in ascending batch order, identical to per-sample
    /// `add_outer` calls.
    pub fn add_outer_batch_fm(&mut self, g_fm: &[f64], xs: &[f64], batch: usize) {
        assert_eq!(g_fm.len(), batch * self.rows);
        assert_eq!(xs.len(), batch * self.cols);
        if batch == 1 {
            self.add_outer(g_fm, xs);
            return;
        }
        for (row, g_r) in self
            .data
            .chunks_exact_mut(self.cols)
            .zip(g_fm.chunks_exact(batch))
        {
            for (&gr, x_s) in g_r.iter().zip(xs.chunks_exact(self.cols)) {
                for (a, &xv) in row.iter_mut().zip(x_s) {
                    *a += gr * xv;
                }
            }
        }
    }

    /// `out[s] = Aᵀ·g_s` for `batch` gradients stacked batch-major in `gs`
    /// (`batch × rows`); writes `batch × cols` into `out`. Every element
    /// accumulates over `r` in ascending order, like `matvec_t`.
    pub fn matmul_t(&self, gs: &[f64], batch: usize, out: &mut Vec<f64>) {
        assert_eq!(gs.len(), batch * self.rows);
        out.clear();
        out.resize(batch * self.cols, 0.0);
        for (r, row) in self.data.chunks_exact(self.cols).enumerate() {
            for (g_s, y_s) in gs
                .chunks_exact(self.rows)
                .zip(out.chunks_exact_mut(self.cols))
            {
                let gr = g_s[r];
                for (yc, &a) in y_s.iter_mut().zip(row) {
                    *yc += a * gr;
                }
            }
        }
    }

    /// `A += Σ_s g_s ⊗ x_s` over the stacked batch — every element
    /// accumulates the samples in ascending batch order, identical to
    /// calling `add_outer` once per sample.
    pub fn add_outer_batch(&mut self, gs: &[f64], xs: &[f64], batch: usize) {
        assert_eq!(gs.len(), batch * self.rows);
        assert_eq!(xs.len(), batch * self.cols);
        for (r, row) in self.data.chunks_exact_mut(self.cols).enumerate() {
            for (g_s, x_s) in gs.chunks_exact(self.rows).zip(xs.chunks_exact(self.cols)) {
                let gr = g_s[r];
                for (a, &xv) in row.iter_mut().zip(x_s) {
                    *a += gr * xv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let mut m = Matrix::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in (1..=6).enumerate() {
            m.data_mut()[i] = v as f64;
        }
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let mut m = Matrix::zeros(2, 3);
        for (i, v) in (1..=6).enumerate() {
            m.data_mut()[i] = v as f64;
        }
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 6.0);
        assert_eq!(m.get(1, 1), 8.0);
    }

    #[test]
    fn random_respects_limit_and_seed() {
        let mut r1 = SmallRng::seed_from_u64(1);
        let mut r2 = SmallRng::seed_from_u64(1);
        let a = Matrix::random(4, 4, 0.5, &mut r1);
        let b = Matrix::random(4, 4, 0.5, &mut r2);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn matmul_xt_is_batched_matvec_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(11);
        let m = Matrix::random(5, 7, 1.0, &mut rng);
        let xs: Vec<f64> = (0..3 * 7).map(|i| ((i * 13) as f64).sin()).collect();
        let mut out = Vec::new();
        let mut stage = Vec::new();
        m.matmul_xt(&xs, 3, &mut out, &mut stage);
        for s in 0..3 {
            let y = m.matvec(&xs[s * 7..(s + 1) * 7]);
            assert_eq!(&out[s * 5..(s + 1) * 5], &y[..], "sample {s}");
        }
    }

    #[test]
    fn matmul_t_is_batched_matvec_t_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(12);
        let m = Matrix::random(6, 4, 1.0, &mut rng);
        let gs: Vec<f64> = (0..3 * 6).map(|i| ((i * 7) as f64).cos()).collect();
        let mut out = Vec::new();
        m.matmul_t(&gs, 3, &mut out);
        for s in 0..3 {
            let y = m.matvec_t(&gs[s * 6..(s + 1) * 6]);
            assert_eq!(&out[s * 4..(s + 1) * 4], &y[..], "sample {s}");
        }
    }

    #[test]
    fn add_outer_batch_matches_sequential_add_outer() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut a = Matrix::random(4, 5, 1.0, &mut rng);
        let mut b = a.clone();
        let gs: Vec<f64> = (0..3 * 4).map(|i| (i as f64 * 0.37).sin()).collect();
        let xs: Vec<f64> = (0..3 * 5).map(|i| (i as f64 * 0.53).cos()).collect();
        a.add_outer_batch(&gs, &xs, 3);
        for s in 0..3 {
            b.add_outer(&gs[s * 4..(s + 1) * 4], &xs[s * 5..(s + 1) * 5]);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn fm_kernels_match_batch_major_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(21);
        let m = Matrix::random(5, 7, 1.0, &mut rng);
        let batch = 4;
        let xs: Vec<f64> = (0..batch * 7).map(|i| ((i * 13) as f64).sin()).collect();
        // matmul_fm on the transposed input == matmul_xt transposed back.
        let mut xt = vec![0.0; xs.len()];
        transpose_into(&xs, batch, 7, &mut xt);
        let mut yt = Vec::new();
        m.matmul_fm(&xt, batch, &mut yt);
        let (mut out, mut stage) = (Vec::new(), Vec::new());
        m.matmul_xt(&xs, batch, &mut out, &mut stage);
        let mut y_bm = vec![0.0; yt.len()];
        transpose_into(&yt, 5, batch, &mut y_bm);
        assert_eq!(y_bm, out);
        // matmul_t_fm == per-sample matvec_t.
        let gs: Vec<f64> = (0..batch * 5).map(|i| ((i * 7) as f64).cos()).collect();
        let mut g_fm = vec![0.0; gs.len()];
        transpose_into(&gs, batch, 5, &mut g_fm);
        let mut din_fm = Vec::new();
        m.matmul_t_fm(&g_fm, batch, &mut din_fm);
        for s in 0..batch {
            let d = m.matvec_t(&gs[s * 5..(s + 1) * 5]);
            for (c, &dv) in d.iter().enumerate() {
                assert_eq!(din_fm[c * batch + s], dv, "sample {s} col {c}");
            }
        }
        // add_outer_batch_fm == sequential add_outer.
        let mut a = m.clone();
        let mut b = m.clone();
        a.add_outer_batch_fm(&g_fm, &xs, batch);
        for s in 0..batch {
            b.add_outer(&gs[s * 5..(s + 1) * 5], &xs[s * 7..(s + 1) * 7]);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_round_trips() {
        let src: Vec<f64> = (0..11 * 17).map(|i| i as f64).collect();
        let mut t = vec![0.0; src.len()];
        let mut back = vec![0.0; src.len()];
        transpose_into(&src, 11, 17, &mut t);
        transpose_into(&t, 17, 11, &mut back);
        assert_eq!(src, back);
        assert_eq!(t[3 * 11 + 2], src[2 * 17 + 3]);
    }

    #[test]
    fn zero_clears() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut m = Matrix::random(3, 3, 1.0, &mut r);
        m.zero();
        assert!(m.data().iter().all(|&v| v == 0.0));
    }
}
