//! The experience pool (paper §3.2, Eq. 3).
//!
//! After each episode (one full pass assigning crossbars to every layer)
//! the pool collects `(S_k, S_{k+1}, a_k, R)` tuples; the agent samples
//! minibatches to update the actor-critic pair. Bounded ring buffer:
//! oldest experiences are evicted first.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One transition (paper Eq. 3). The action is the raw continuous actor
/// output; `reward` is the episode reward shared by all of the episode's
/// steps; `done` marks the final layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experience {
    pub state: Vec<f64>,
    pub next_state: Vec<f64>,
    pub action: f64,
    pub reward: f64,
    pub done: bool,
}

/// Bounded FIFO experience pool with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Experience>,
    next: usize,
}

impl ReplayBuffer {
    /// Pool with the given capacity (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        ReplayBuffer {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Stored experience count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert, evicting the oldest experience when full.
    pub fn push(&mut self, e: Experience) {
        if self.items.len() < self.capacity {
            self.items.push(e);
        } else {
            self.items[self.next] = e;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Sample `n` experiences uniformly with replacement.
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<&Experience> {
        assert!(!self.items.is_empty(), "sampling an empty pool");
        (0..n)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }
}

/// Proportional prioritized experience replay (Schaul et al.) over a
/// sum-tree: transitions are sampled with probability proportional to
/// their priority (typically the TD error), so surprising experiences are
/// revisited more often. Extension beyond the paper's uniform pool
/// (DESIGN.md §6).
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    capacity: usize,
    /// Binary sum-tree over priorities; leaves start at `capacity - 1`.
    tree: Vec<f64>,
    items: Vec<Option<Experience>>,
    next: usize,
    len: usize,
}

impl PrioritizedReplay {
    /// Pool with the given capacity (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        PrioritizedReplay {
            capacity,
            tree: vec![0.0; 2 * capacity - 1],
            items: vec![None; capacity],
            next: 0,
            len: 0,
        }
    }

    /// Stored experience count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total priority mass.
    pub fn total_priority(&self) -> f64 {
        self.tree[0]
    }

    fn leaf(&self, slot: usize) -> usize {
        slot + self.capacity - 1
    }

    /// Set a slot's priority and propagate the change to the root.
    fn set_priority(&mut self, slot: usize, priority: f64) {
        assert!(priority >= 0.0 && priority.is_finite());
        let mut idx = self.leaf(slot);
        let delta = priority - self.tree[idx];
        self.tree[idx] = priority;
        while idx > 0 {
            idx = (idx - 1) / 2;
            self.tree[idx] += delta;
        }
    }

    /// Insert with the given priority, evicting the oldest slot when full.
    pub fn push(&mut self, e: Experience, priority: f64) {
        let slot = self.next;
        self.items[slot] = Some(e);
        self.set_priority(slot, priority.max(f64::MIN_POSITIVE));
        self.next = (self.next + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Update a previously sampled slot's priority (e.g. with a fresh TD
    /// error).
    pub fn update_priority(&mut self, slot: usize, priority: f64) {
        assert!(self.items[slot].is_some(), "updating an empty slot");
        self.set_priority(slot, priority.max(f64::MIN_POSITIVE));
    }

    /// Sample one transition proportionally to priority; returns the slot
    /// (for later priority updates) and the experience.
    pub fn sample_one<R: Rng>(&self, rng: &mut R) -> (usize, &Experience) {
        assert!(self.len > 0, "sampling an empty pool");
        let mut mass = rng.gen::<f64>() * self.total_priority();
        let mut idx = 0;
        while idx < self.capacity - 1 {
            let left = 2 * idx + 1;
            if mass <= self.tree[left] {
                idx = left;
            } else {
                mass -= self.tree[left];
                idx = left + 1;
            }
        }
        let slot = idx - (self.capacity - 1);
        (
            slot,
            self.items[slot]
                .as_ref()
                .expect("priority mass on empty slot"),
        )
    }

    /// Sample `n` transitions (with replacement).
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<(usize, &Experience)> {
        (0..n).map(|_| self.sample_one(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn exp(tag: f64) -> Experience {
        Experience {
            state: vec![tag],
            next_state: vec![tag + 1.0],
            action: tag,
            reward: tag,
            done: false,
        }
    }

    #[test]
    fn fills_then_evicts_oldest() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(exp(i as f64));
        }
        assert_eq!(b.len(), 3);
        let tags: Vec<f64> = b.items.iter().map(|e| e.action).collect();
        // 0 and 1 were evicted (ring overwrote slots 0 and 1).
        assert!(tags.contains(&2.0) && tags.contains(&3.0) && tags.contains(&4.0));
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..4 {
            b.push(exp(i as f64));
        }
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(b.sample(16, &mut rng).len(), 16);
    }

    #[test]
    fn sampling_covers_the_pool() {
        let mut b = ReplayBuffer::new(8);
        for i in 0..8 {
            b.push(exp(i as f64));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for e in b.sample(256, &mut rng) {
            seen.insert(e.action as i64);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    #[should_panic]
    fn sampling_empty_pool_panics() {
        let b = ReplayBuffer::new(4);
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = b.sample(1, &mut rng);
    }

    #[test]
    fn sum_tree_tracks_total_priority() {
        let mut p = PrioritizedReplay::new(4);
        p.push(exp(0.0), 1.0);
        p.push(exp(1.0), 2.0);
        p.push(exp(2.0), 3.0);
        assert!((p.total_priority() - 6.0).abs() < 1e-12);
        p.update_priority(1, 5.0);
        assert!((p.total_priority() - 9.0).abs() < 1e-12);
        // Eviction replaces both item and priority.
        p.push(exp(3.0), 1.0);
        p.push(exp(4.0), 1.0); // overwrites slot 0 (priority 1.0 → 1.0)
        assert_eq!(p.len(), 4);
        assert!((p.total_priority() - (1.0 + 5.0 + 3.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_proportional_to_priority() {
        let mut p = PrioritizedReplay::new(4);
        p.push(exp(0.0), 1.0);
        p.push(exp(1.0), 9.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let hits_hi = p
            .sample(n, &mut rng)
            .iter()
            .filter(|(slot, _)| *slot == 1)
            .count();
        let frac = hits_hi as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "high-priority fraction {frac}");
    }

    #[test]
    fn zero_priority_items_are_never_sampled() {
        let mut p = PrioritizedReplay::new(4);
        p.push(exp(0.0), 1.0);
        p.push(exp(1.0), 0.0); // clamped to MIN_POSITIVE: effectively never
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            let (slot, _) = p.sample_one(&mut rng);
            assert_eq!(slot, 0);
        }
    }

    #[test]
    fn sampled_slots_round_trip_priority_updates() {
        let mut p = PrioritizedReplay::new(8);
        for i in 0..8 {
            p.push(exp(i as f64), 1.0);
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let (slot, e) = p.sample_one(&mut rng);
        let tag = e.action;
        p.update_priority(slot, 100.0);
        // The boosted slot now dominates sampling.
        let hits = p
            .sample(1000, &mut rng)
            .iter()
            .filter(|(s, _)| *s == slot)
            .count();
        assert!(hits > 850, "boosted slot sampled {hits}/1000");
        assert_eq!(p.items[slot].as_ref().unwrap().action, tag);
    }

    #[test]
    #[should_panic]
    fn prioritized_sampling_empty_panics() {
        let p = PrioritizedReplay::new(4);
        let mut rng = SmallRng::seed_from_u64(6);
        let _ = p.sample_one(&mut rng);
    }
}
