//! A discrete deep Q-network agent.
//!
//! Beyond-paper comparator (DESIGN.md §6): the crossbar-candidate choice
//! is naturally *discrete*, so a DQN with one Q-head per candidate is the
//! obvious alternative to the paper's continuous-action DDPG. Standard
//! recipe: epsilon-greedy exploration with decay, uniform replay, TD
//! targets from a Polyak-averaged target network, Huber-free plain MSE
//! (losses here are tiny and well-conditioned).

use crate::nn::{Activation, Adam, Mlp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One discrete transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteExperience {
    pub state: Vec<f64>,
    pub next_state: Vec<f64>,
    pub action: usize,
    pub reward: f64,
    pub done: bool,
}

/// Agent hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// State dimension.
    pub state_dim: usize,
    /// Number of discrete actions (Q-network heads).
    pub actions: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Target soft-update coefficient.
    pub tau: f64,
    /// Minibatch size.
    pub batch: usize,
    /// Replay capacity.
    pub pool: usize,
    /// Initial exploration rate.
    pub eps0: f64,
    /// Per-episode epsilon decay.
    pub eps_decay: f64,
    /// Exploration floor.
    pub eps_min: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            state_dim: 10,
            actions: 5,
            hidden: 64,
            lr: 2e-3,
            gamma: 0.99,
            tau: 0.01,
            batch: 64,
            pool: 4096,
            eps0: 0.5,
            eps_decay: 0.99,
            eps_min: 0.02,
            seed: 0,
        }
    }
}

/// The DQN agent.
#[derive(Debug, Clone)]
pub struct Dqn {
    cfg: DqnConfig,
    q: Mlp,
    q_target: Mlp,
    opt: Adam,
    replay: Vec<DiscreteExperience>,
    next_slot: usize,
    epsilon: f64,
    rng: SmallRng,
    scratch: TrainScratch,
}

/// Reusable flat batch buffers for [`Dqn::train_step`].
#[derive(Debug, Clone, Default)]
struct TrainScratch {
    /// Stacked states / next-states (`batch × state_dim`).
    states: Vec<f64>,
    /// TD targets (`batch`).
    targets: Vec<f64>,
    /// Stacked one-hot output gradients (`batch × actions`).
    grads: Vec<f64>,
}

impl Dqn {
    /// Build an agent; the target network starts as a copy.
    pub fn new(cfg: DqnConfig) -> Self {
        assert!(cfg.actions >= 2);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xD16);
        let q = Mlp::new(
            &[cfg.state_dim, cfg.hidden, cfg.hidden, cfg.actions],
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        Dqn {
            q_target: q.clone(),
            opt: Adam::new(cfg.lr),
            replay: Vec::new(),
            next_slot: 0,
            epsilon: cfg.eps0,
            q,
            rng,
            cfg,
            scratch: TrainScratch::default(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// All Q-values for a state.
    pub fn q_values(&mut self, state: &[f64]) -> Vec<f64> {
        self.q.forward(state)
    }

    /// Greedy action.
    pub fn act(&mut self, state: &[f64]) -> usize {
        argmax(&self.q.forward(state))
    }

    /// Epsilon-greedy action.
    pub fn act_eps(&mut self, state: &[f64]) -> usize {
        if self.rng.gen::<f64>() < self.epsilon {
            self.rng.gen_range(0..self.cfg.actions)
        } else {
            self.act(state)
        }
    }

    /// Decay exploration (call at episode end).
    pub fn end_episode(&mut self) {
        self.epsilon = (self.epsilon * self.cfg.eps_decay).max(self.cfg.eps_min);
    }

    /// Store one transition (ring-buffer eviction).
    pub fn remember(&mut self, e: DiscreteExperience) {
        if self.replay.len() < self.cfg.pool {
            self.replay.push(e);
        } else {
            self.replay[self.next_slot] = e;
            self.next_slot = (self.next_slot + 1) % self.cfg.pool;
        }
    }

    /// One minibatch TD update; returns the batch MSE once the pool holds
    /// a full batch.
    pub fn train_step(&mut self) -> Option<f64> {
        if self.replay.len() < self.cfg.batch {
            return None;
        }
        let idx: Vec<usize> = (0..self.cfg.batch)
            .map(|_| self.rng.gen_range(0..self.replay.len()))
            .collect();
        let batch: Vec<DiscreteExperience> =
            idx.into_iter().map(|i| self.replay[i].clone()).collect();
        let n = batch.len() as f64;
        let b = batch.len();
        let acts = self.cfg.actions;
        let mut sc = std::mem::take(&mut self.scratch);

        // TD targets from the target network, one batched pass
        // (bit-identical to the per-sample loop; DESIGN.md §9).
        sc.states.clear();
        for e in &batch {
            sc.states.extend_from_slice(&e.next_state);
        }
        let next_q = self.q_target.forward_batch_infer(&sc.states, b);
        sc.targets.clear();
        for (e, nq) in batch.iter().zip(next_q.chunks(acts)) {
            let max_next = nq.iter().cloned().fold(f64::MIN, f64::max);
            let y = e.reward
                + if e.done {
                    0.0
                } else {
                    self.cfg.gamma * max_next
                };
            sc.targets.push(y);
        }

        self.q.zero_grad();
        sc.states.clear();
        for e in &batch {
            sc.states.extend_from_slice(&e.state);
        }
        let qv = self.q.forward_batch(&sc.states, b);
        let mut loss = 0.0;
        sc.grads.clear();
        sc.grads.resize(b * acts, 0.0);
        for (s, (e, &y)) in batch.iter().zip(&sc.targets).enumerate() {
            let err = qv[s * acts + e.action] - y;
            loss += err * err;
            sc.grads[s * acts + e.action] = 2.0 * err;
        }
        loss /= n;
        self.q.backward_batch(&sc.grads);
        self.q.adam_step(&mut self.opt, n);
        self.q_target.soft_update_from(&self.q, self.cfg.tau);
        self.scratch = sc;
        Some(loss)
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_in_range() {
        let mut agent = Dqn::new(DqnConfig {
            state_dim: 3,
            actions: 4,
            ..DqnConfig::default()
        });
        for i in 0..50 {
            let s = vec![i as f64 * 0.02, 0.5, -0.5];
            assert!(agent.act(&s) < 4);
            assert!(agent.act_eps(&s) < 4);
        }
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut agent = Dqn::new(DqnConfig {
            eps0: 1.0,
            eps_decay: 0.5,
            eps_min: 0.1,
            ..DqnConfig::default()
        });
        for _ in 0..10 {
            agent.end_episode();
        }
        assert!((agent.epsilon() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn solves_a_discrete_bandit() {
        // Reward 1 only for action 2: the greedy policy must lock on.
        let mut agent = Dqn::new(DqnConfig {
            state_dim: 1,
            actions: 4,
            hidden: 24,
            batch: 16,
            seed: 6,
            ..DqnConfig::default()
        });
        let s = vec![1.0];
        for _ in 0..400 {
            let a = agent.act_eps(&s);
            let r = if a == 2 { 1.0 } else { 0.0 };
            agent.remember(DiscreteExperience {
                state: s.clone(),
                next_state: s.clone(),
                action: a,
                reward: r,
                done: true,
            });
            agent.end_episode();
            agent.train_step();
        }
        assert_eq!(agent.act(&s), 2);
        let q = agent.q_values(&s);
        assert!(q[2] > 0.5, "Q {q:?}");
    }

    #[test]
    fn loss_decreases_on_stationary_data() {
        let mut agent = Dqn::new(DqnConfig {
            state_dim: 2,
            actions: 3,
            batch: 16,
            seed: 9,
            ..DqnConfig::default()
        });
        for i in 0..64 {
            let s = vec![(i % 8) as f64 / 8.0, ((i / 8) % 8) as f64 / 8.0];
            agent.remember(DiscreteExperience {
                state: s.clone(),
                next_state: s.clone(),
                action: i % 3,
                reward: s[0],
                done: true,
            });
        }
        let first = agent.train_step().unwrap();
        let mut last = first;
        for _ in 0..200 {
            last = agent.train_step().unwrap();
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn replay_ring_evicts() {
        let mut agent = Dqn::new(DqnConfig {
            pool: 3,
            ..DqnConfig::default()
        });
        for i in 0..5 {
            agent.remember(DiscreteExperience {
                state: vec![i as f64],
                next_state: vec![i as f64],
                action: 0,
                reward: 0.0,
                done: true,
            });
        }
        assert_eq!(agent.replay.len(), 3);
    }
}
