//! Dense neural network with manual backpropagation and Adam.
//!
//! Small by design: the paper's actor/critic are 2-hidden-layer MLPs over
//! a 10-dimensional state. Gradients are verified against central finite
//! differences in this module's tests, so the DDPG layer above can trust
//! them unconditionally.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// 1/(1+e^-x) — used on the actor head to bound actions in (0, 1).
    Sigmoid,
    /// identity — used on the critic head.
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *output* y = f(x).
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// One dense layer with cached forward state and accumulated gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    act: Activation,
    // forward caches
    input: Vec<f64>,
    output: Vec<f64>,
    // accumulated gradients
    gw: Matrix,
    gb: Vec<f64>,
    // Adam moments
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new<R: Rng>(n_in: usize, n_out: usize, act: Activation, rng: &mut R) -> Self {
        // Xavier-uniform init.
        let limit = (6.0 / (n_in + n_out) as f64).sqrt();
        Dense {
            w: Matrix::random(n_out, n_in, limit, rng),
            b: vec![0.0; n_out],
            act,
            input: Vec::new(),
            output: Vec::new(),
            gw: Matrix::zeros(n_out, n_in),
            gb: vec![0.0; n_out],
            mw: Matrix::zeros(n_out, n_in),
            vw: Matrix::zeros(n_out, n_in),
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        self.input = x.to_vec();
        let mut y = self.w.matvec(x);
        for (v, b) in y.iter_mut().zip(&self.b) {
            *v = self.act.apply(*v + b);
        }
        self.output = y.clone();
        y
    }

    /// Accumulate gradients for the last forward pass; return dLoss/dInput.
    fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        assert_eq!(
            grad_out.len(),
            self.output.len(),
            "backward before forward?"
        );
        let delta: Vec<f64> = grad_out
            .iter()
            .zip(&self.output)
            .map(|(&g, &y)| g * self.act.derivative_from_output(y))
            .collect();
        self.gw.add_outer(&delta, &self.input);
        for (gb, d) in self.gb.iter_mut().zip(&delta) {
            *gb += d;
        }
        self.w.matvec_t(&delta)
    }

    fn zero_grad(&mut self) {
        self.gw.zero();
        self.gb.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Adam optimizer state (one per network).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
}

impl Adam {
    /// Standard Adam with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with sizes `dims = [in, h1, …, out]`, `hidden`
    /// activation on all but the last layer and `output` on the head.
    pub fn new<R: Rng>(
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() { output } else { hidden };
                Dense::new(w[0], w[1], act, rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Forward pass (caches activations for a subsequent backward).
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        h
    }

    /// Backpropagate `grad_out` (dLoss/dOutput), accumulating parameter
    /// gradients; returns dLoss/dInput.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        let mut g = grad_out.to_vec();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Dense::zero_grad);
    }

    /// One Adam step over the accumulated gradients, scaled by `1/scale`
    /// (pass the batch size to average a batch's accumulation).
    pub fn adam_step(&mut self, opt: &mut Adam, scale: f64) {
        opt.t += 1;
        let bc1 = 1.0 - opt.beta1.powi(opt.t as i32);
        let bc2 = 1.0 - opt.beta2.powi(opt.t as i32);
        for l in &mut self.layers {
            let n = l.w.data().len();
            for i in 0..n {
                let g = l.gw.data()[i] / scale;
                let m = &mut l.mw.data_mut()[i];
                *m = opt.beta1 * *m + (1.0 - opt.beta1) * g;
                let v = &mut l.vw.data_mut()[i];
                *v = opt.beta2 * *v + (1.0 - opt.beta2) * g * g;
                let mhat = l.mw.data()[i] / bc1;
                let vhat = l.vw.data()[i] / bc2;
                l.w.data_mut()[i] -= opt.lr * mhat / (vhat.sqrt() + opt.eps);
            }
            for i in 0..l.b.len() {
                let g = l.gb[i] / scale;
                l.mb[i] = opt.beta1 * l.mb[i] + (1.0 - opt.beta1) * g;
                l.vb[i] = opt.beta2 * l.vb[i] + (1.0 - opt.beta2) * g * g;
                let mhat = l.mb[i] / bc1;
                let vhat = l.vb[i] / bc2;
                l.b[i] -= opt.lr * mhat / (vhat.sqrt() + opt.eps);
            }
        }
    }

    /// Flat parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.b.len())
            .sum()
    }

    /// Visit all parameters (weights then biases, layer by layer).
    pub fn for_each_param(&self, mut f: impl FnMut(f64)) {
        for l in &self.layers {
            l.w.data().iter().for_each(|&v| f(v));
            l.b.iter().for_each(|&v| f(v));
        }
    }

    /// Polyak / soft update: `self ← tau·source + (1−tau)·self`.
    /// Networks must share an architecture.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        assert_eq!(self.layers.len(), source.layers.len());
        for (t, s) in self.layers.iter_mut().zip(&source.layers) {
            for (tv, sv) in t.w.data_mut().iter_mut().zip(s.w.data()) {
                *tv = tau * sv + (1.0 - tau) * *tv;
            }
            for (tv, sv) in t.b.iter_mut().zip(&s.b) {
                *tv = tau * sv + (1.0 - tau) * *tv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mse_loss(y: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
        let loss = y
            .iter()
            .zip(target)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / y.len() as f64;
        let grad = y
            .iter()
            .zip(target)
            .map(|(a, b)| 2.0 * (a - b) / y.len() as f64)
            .collect();
        (loss, grad)
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Perturb every parameter of a small net and compare the analytic
        // gradient with a central difference.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut net = Mlp::new(
            &[3, 5, 4, 2],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng,
        );
        let x = [0.3, -0.7, 0.9];
        let target = [0.2, 0.8];

        net.zero_grad();
        let y = net.forward(&x);
        let (_, grad) = mse_loss(&y, &target);
        net.backward(&grad);

        // Collect analytic grads.
        let mut analytic = Vec::new();
        for l in &net.layers {
            analytic.extend_from_slice(l.gw.data());
            analytic.extend_from_slice(&l.gb);
        }

        let eps = 1e-6;
        let mut idx = 0;
        let n_layers = net.layers.len();
        for li in 0..n_layers {
            let nw = net.layers[li].w.data().len();
            let nb = net.layers[li].b.len();
            for pi in 0..nw + nb {
                let read = |net: &mut Mlp, d: f64| {
                    if pi < nw {
                        net.layers[li].w.data_mut()[pi] += d;
                    } else {
                        net.layers[li].b[pi - nw] += d;
                    }
                };
                read(&mut net, eps);
                let (lp, _) = mse_loss(&net.forward(&x), &target);
                read(&mut net, -2.0 * eps);
                let (lm, _) = mse_loss(&net.forward(&x), &target);
                read(&mut net, eps);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[idx];
                assert!(
                    (a - numeric).abs() < 1e-6 * (1.0 + a.abs()),
                    "param {idx}: analytic {a} vs numeric {numeric}"
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn input_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut net = Mlp::new(&[2, 6, 1], Activation::Relu, Activation::Linear, &mut rng);
        let x = [0.4, -0.2];
        net.zero_grad();
        let y = net.forward(&x);
        let gin = net.backward(&[1.0]);
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let yp = net.forward(&xp)[0];
            let mut xm = x;
            xm[i] -= eps;
            let ym = net.forward(&xm)[0];
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (gin[i] - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                "input {i}: {} vs {numeric} (y={})",
                gin[i],
                y[0]
            );
        }
    }

    #[test]
    fn adam_fits_a_simple_function() {
        // Regress y = sin on a few points; loss must drop by >10×.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, Activation::Linear, &mut rng);
        let mut opt = Adam::new(5e-3);
        let xs: Vec<f64> = (0..16).map(|i| i as f64 / 16.0 * 3.0).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..400 {
            net.zero_grad();
            let mut total = 0.0;
            for &x in &xs {
                let y = net.forward(&[x]);
                let (l, g) = mse_loss(&y, &[x.sin()]);
                total += l;
                net.backward(&g);
            }
            net.adam_step(&mut opt, xs.len() as f64);
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < first / 10.0, "loss {first} → {last}");
    }

    #[test]
    fn soft_update_interpolates() {
        let mut rng = SmallRng::seed_from_u64(8);
        let a = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Linear, &mut rng);
        let b = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Linear, &mut rng);
        let mut t = a.clone();
        t.soft_update_from(&b, 1.0); // full copy
        let mut tb = Vec::new();
        t.for_each_param(|v| tb.push(v));
        let mut bb = Vec::new();
        b.for_each_param(|v| bb.push(v));
        assert_eq!(tb, bb);
        let mut t2 = a.clone();
        t2.soft_update_from(&b, 0.0); // no-op
        let mut t2v = Vec::new();
        t2.for_each_param(|v| t2v.push(v));
        let mut av = Vec::new();
        a.for_each_param(|v| av.push(v));
        assert_eq!(t2v, av);
    }

    #[test]
    fn sigmoid_head_bounds_output() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut net = Mlp::new(&[4, 8, 1], Activation::Relu, Activation::Sigmoid, &mut rng);
        for s in 0..20 {
            let x: Vec<f64> = (0..4).map(|i| ((s * 4 + i) as f64).sin() * 10.0).collect();
            let y = net.forward(&x)[0];
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let mut rng = SmallRng::seed_from_u64(10);
        let net = Mlp::new(
            &[10, 64, 64, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        assert_eq!(net.num_params(), 10 * 64 + 64 + 64 * 64 + 64 + 64 + 1);
    }
}
