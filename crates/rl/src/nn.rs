//! Dense neural network with manual backpropagation and Adam.
//!
//! Small by design: the paper's actor/critic are 2-hidden-layer MLPs over
//! a 10-dimensional state. Gradients are verified against central finite
//! differences in this module's tests, so the DDPG layer above can trust
//! them unconditionally.

use crate::matrix::{transpose_into, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// 1/(1+e^-x) — used on the actor head to bound actions in (0, 1).
    Sigmoid,
    /// identity — used on the critic head.
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *output* y = f(x).
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// One dense layer with cached forward state and accumulated gradients.
///
/// Forward/backward run over a stacked minibatch through the GEMM kernels
/// in [`crate::matrix`]; single-sample calls are the `batch == 1` case.
/// Activations live **feature-major** (`n_out × batch`) between layers —
/// each layer consumes its predecessor's `out_fm` cache directly, so a
/// forward chain performs no staging transposes at all. A batch-major
/// mirror (`output`) is materialized only where something reads it: the
/// public forward API and the weight-gradient accumulation. The caches
/// are volatile scratch (`serde(skip)`) and reuse their allocations.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    act: Activation,
    /// Forward output cache, feature-major `n_out × batch`. The next
    /// layer reads its input straight from here.
    #[serde(skip)]
    out_fm: Vec<f64>,
    /// Batch-major mirror of `out_fm` (`batch × n_out`); empty after an
    /// inference-only forward (see [`Mlp::forward_batch_infer`]).
    #[serde(skip)]
    output: Vec<f64>,
    /// `δ = grad_out ⊙ act′(output)` backward scratch, feature-major.
    #[serde(skip)]
    delta: Vec<f64>,
    // accumulated gradients
    gw: Matrix,
    gb: Vec<f64>,
    // Adam moments
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new<R: Rng>(n_in: usize, n_out: usize, act: Activation, rng: &mut R) -> Self {
        // Xavier-uniform init.
        let limit = (6.0 / (n_in + n_out) as f64).sqrt();
        Dense {
            w: Matrix::random(n_out, n_in, limit, rng),
            b: vec![0.0; n_out],
            act,
            out_fm: Vec::new(),
            output: Vec::new(),
            delta: Vec::new(),
            gw: Matrix::zeros(n_out, n_in),
            gb: vec![0.0; n_out],
            mw: Matrix::zeros(n_out, n_in),
            vw: Matrix::zeros(n_out, n_in),
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    /// Forward `batch` feature-major stacked inputs into the feature-major
    /// output cache; the batch-major mirror is produced only if `mirror`
    /// (the backward pass reads it as the next layer's GEMM input).
    fn forward_fm(&mut self, x_fm: &[f64], batch: usize, mirror: bool) {
        let (n_out, _) = self.w.dims();
        self.w.matmul_fm(x_fm, batch, &mut self.out_fm);
        // Bias + activation on contiguous per-feature runs; value-for-
        // value the same scalar ops as the batch-major formulation.
        for (y_r, &b) in self.out_fm.chunks_exact_mut(batch).zip(&self.b) {
            for v in y_r {
                *v = self.act.apply(*v + b);
            }
        }
        self.output.clear();
        if mirror {
            self.output.resize(n_out * batch, 0.0);
            if batch == 1 {
                self.output.copy_from_slice(&self.out_fm);
            } else {
                transpose_into(&self.out_fm, n_out, batch, &mut self.output);
            }
        }
    }

    /// `δ = grad ⊙ act′(out)` into the feature-major delta scratch.
    fn compute_delta(&mut self, g_fm: &[f64]) {
        assert_eq!(g_fm.len(), self.out_fm.len(), "backward before forward?");
        self.delta.clear();
        self.delta.extend(
            g_fm.iter()
                .zip(&self.out_fm)
                .map(|(&g, &y)| g * self.act.derivative_from_output(y)),
        );
    }

    /// Accumulate gradients for the cached forward batch (whose
    /// batch-major input was `xs`); writes feature-major dLoss/dInput
    /// into `din`.
    fn backward_fm(&mut self, g_fm: &[f64], xs: &[f64], batch: usize, din: &mut Vec<f64>) {
        self.compute_delta(g_fm);
        self.gw.add_outer_batch_fm(&self.delta, xs, batch);
        for (gb, d_r) in self.gb.iter_mut().zip(self.delta.chunks_exact(batch)) {
            for &d in d_r {
                *gb += d;
            }
        }
        self.w.matmul_t_fm(&self.delta, batch, din);
    }

    /// Like `backward_fm` but only propagates dLoss/dInput — parameter
    /// gradients are left untouched. For passes whose parameter grads
    /// would be discarded (the DDPG actor update backprops through the
    /// critic only to reach `∂Q/∂a`).
    fn backward_input_only_fm(&mut self, g_fm: &[f64], batch: usize, din: &mut Vec<f64>) {
        self.compute_delta(g_fm);
        self.w.matmul_t_fm(&self.delta, batch, din);
    }

    fn zero_grad(&mut self) {
        self.gw.zero();
        self.gb.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Adam optimizer state (one per network).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
}

impl Adam {
    /// Standard Adam with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Layer-0 input cache, batch-major (read by the weight-gradient
    /// accumulation in backward).
    #[serde(skip)]
    x0: Vec<f64>,
    /// Layer-0 input staged feature-major for the GEMM chain (the only
    /// input transpose a forward pass makes; later layers read their
    /// predecessor's feature-major output cache in place).
    #[serde(skip)]
    x0_fm: Vec<f64>,
    /// Batch size of the cached forward pass.
    #[serde(skip)]
    batch: usize,
    /// Ping-pong gradient buffers for the backward chain (feature-major;
    /// `grad_a` holds the batch-major input gradient after a backward).
    #[serde(skip)]
    grad_a: Vec<f64>,
    #[serde(skip)]
    grad_b: Vec<f64>,
}

impl Mlp {
    /// Build an MLP with sizes `dims = [in, h1, …, out]`, `hidden`
    /// activation on all but the last layer and `output` on the head.
    pub fn new<R: Rng>(
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() { output } else { hidden };
                Dense::new(w[0], w[1], act, rng)
            })
            .collect();
        Mlp {
            layers,
            x0: Vec::new(),
            x0_fm: Vec::new(),
            batch: 0,
            grad_a: Vec::new(),
            grad_b: Vec::new(),
        }
    }

    /// Forward pass (caches activations for a subsequent backward).
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        self.forward_batch(x, 1).to_vec()
    }

    /// Forward a stacked minibatch (batch-major `batch × in_dim`); returns
    /// the head outputs (`batch × out_dim`), caching activations for a
    /// subsequent [`Mlp::backward_batch`]. Every output element is
    /// bit-identical to a per-sample [`Mlp::forward`] on that sample.
    pub fn forward_batch(&mut self, xs: &[f64], batch: usize) -> &[f64] {
        self.forward_inner(xs, batch, true)
    }

    /// [`Mlp::forward_batch`] for inference-only passes: hidden layers
    /// skip their batch-major mirrors (nothing will read them — they only
    /// feed a subsequent `backward_batch`'s weight-gradient accumulation,
    /// which panics on the emptied caches if called by mistake). Output
    /// values are bit-identical to `forward_batch`; a later
    /// [`Mlp::backward_input_only_batch`] is still valid.
    pub fn forward_batch_infer(&mut self, xs: &[f64], batch: usize) -> &[f64] {
        self.forward_inner(xs, batch, false)
    }

    fn forward_inner(&mut self, xs: &[f64], batch: usize, train: bool) -> &[f64] {
        assert_eq!(xs.len() % batch, 0);
        let in_dim = xs.len() / batch;
        self.x0.clear();
        self.x0_fm.clear();
        if train {
            self.x0.extend_from_slice(xs);
        }
        if batch == 1 {
            self.x0_fm.extend_from_slice(xs);
        } else {
            self.x0_fm.resize(xs.len(), 0.0);
            transpose_into(xs, batch, in_dim, &mut self.x0_fm);
        }
        self.batch = batch;
        let n = self.layers.len();
        self.layers[0].forward_fm(&self.x0_fm, batch, train || n == 1);
        for i in 1..n {
            // split_at_mut keeps the predecessor's output borrow disjoint
            // from the layer being run. The head always mirrors so the
            // public output stays batch-major.
            let (done, rest) = self.layers.split_at_mut(i);
            let h = &done[i - 1].out_fm;
            rest[0].forward_fm(h, batch, train || i + 1 == n);
        }
        &self.layers[n - 1].output
    }

    /// Backpropagate `grad_out` (dLoss/dOutput), accumulating parameter
    /// gradients; returns dLoss/dInput.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        self.backward_batch(grad_out).to_vec()
    }

    /// Backpropagate stacked output gradients (`batch × out_dim`, matching
    /// the cached forward batch), accumulating parameter gradients in
    /// ascending batch order; returns dLoss/dInput (`batch × in_dim`).
    /// Bit-identical to per-sample [`Mlp::backward`] calls in batch order.
    pub fn backward_batch(&mut self, grad_out: &[f64]) -> &[f64] {
        let batch = self.batch;
        let mut g = std::mem::take(&mut self.grad_a);
        let mut din = std::mem::take(&mut self.grad_b);
        let x0 = std::mem::take(&mut self.x0);
        Self::stage_head_grad(grad_out, batch, &mut g);
        for i in (0..self.layers.len()).rev() {
            let (done, rest) = self.layers.split_at_mut(i);
            let input: &[f64] = if i == 0 { &x0 } else { &done[i - 1].output };
            rest[0].backward_fm(&g, input, batch, &mut din);
            std::mem::swap(&mut g, &mut din);
        }
        Self::unstage_input_grad(&g, batch, &mut din);
        self.x0 = x0;
        self.grad_a = din;
        self.grad_b = g;
        &self.grad_a
    }

    /// Backpropagate stacked output gradients to the input *without*
    /// accumulating parameter gradients; returns dLoss/dInput. The input
    /// gradient is bit-identical to [`Mlp::backward_batch`]'s.
    pub fn backward_input_only_batch(&mut self, grad_out: &[f64]) -> &[f64] {
        let batch = self.batch;
        let mut g = std::mem::take(&mut self.grad_a);
        let mut din = std::mem::take(&mut self.grad_b);
        Self::stage_head_grad(grad_out, batch, &mut g);
        for i in (0..self.layers.len()).rev() {
            self.layers[i].backward_input_only_fm(&g, batch, &mut din);
            std::mem::swap(&mut g, &mut din);
        }
        Self::unstage_input_grad(&g, batch, &mut din);
        self.grad_a = din;
        self.grad_b = g;
        &self.grad_a
    }

    /// Stage the batch-major head gradient feature-major (for the paper's
    /// scalar-headed actor/critic nets the layouts coincide and this is a
    /// plain copy).
    fn stage_head_grad(grad_out: &[f64], batch: usize, g_fm: &mut Vec<f64>) {
        assert_eq!(grad_out.len() % batch, 0);
        let out_dim = grad_out.len() / batch;
        g_fm.clear();
        if out_dim == 1 || batch == 1 {
            g_fm.extend_from_slice(grad_out);
        } else {
            g_fm.resize(grad_out.len(), 0.0);
            transpose_into(grad_out, batch, out_dim, g_fm);
        }
    }

    /// Transpose the feature-major input gradient back to the public
    /// batch-major layout.
    fn unstage_input_grad(g_fm: &[f64], batch: usize, din: &mut Vec<f64>) {
        let in_dim = g_fm.len() / batch;
        din.clear();
        din.resize(g_fm.len(), 0.0);
        if in_dim == 1 || batch == 1 {
            din.copy_from_slice(g_fm);
        } else {
            transpose_into(g_fm, in_dim, batch, din);
        }
    }

    /// The head outputs cached by the last forward pass (batch-major).
    pub fn last_output(&self) -> &[f64] {
        &self.layers[self.layers.len() - 1].output
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Dense::zero_grad);
    }

    /// One Adam step over the accumulated gradients, scaled by `1/scale`
    /// (pass the batch size to average a batch's accumulation).
    pub fn adam_step(&mut self, opt: &mut Adam, scale: f64) {
        opt.t += 1;
        let bc1 = 1.0 - opt.beta1.powi(opt.t as i32);
        let bc2 = 1.0 - opt.beta2.powi(opt.t as i32);
        // Streaming zips instead of indexed access: no bounds checks, and
        // the per-element update (same op order as ever) vectorizes.
        let step = |w: &mut f64, g: f64, m: &mut f64, v: &mut f64| {
            let g = g / scale;
            *m = opt.beta1 * *m + (1.0 - opt.beta1) * g;
            *v = opt.beta2 * *v + (1.0 - opt.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *w -= opt.lr * mhat / (vhat.sqrt() + opt.eps);
        };
        for l in &mut self.layers {
            let ws = l.w.data_mut().iter_mut().zip(l.gw.data());
            let moments = l.mw.data_mut().iter_mut().zip(l.vw.data_mut().iter_mut());
            for ((w, &g), (m, v)) in ws.zip(moments) {
                step(w, g, m, v);
            }
            let bs = l.b.iter_mut().zip(&l.gb);
            let moments = l.mb.iter_mut().zip(l.vb.iter_mut());
            for ((w, &g), (m, v)) in bs.zip(moments) {
                step(w, g, m, v);
            }
        }
    }

    /// Flat parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.b.len())
            .sum()
    }

    /// Visit all parameters (weights then biases, layer by layer).
    pub fn for_each_param(&self, mut f: impl FnMut(f64)) {
        for l in &self.layers {
            l.w.data().iter().for_each(|&v| f(v));
            l.b.iter().for_each(|&v| f(v));
        }
    }

    /// Polyak / soft update: `self ← tau·source + (1−tau)·self`.
    /// Networks must share an architecture.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        assert_eq!(self.layers.len(), source.layers.len());
        for (t, s) in self.layers.iter_mut().zip(&source.layers) {
            for (tv, sv) in t.w.data_mut().iter_mut().zip(s.w.data()) {
                *tv = tau * sv + (1.0 - tau) * *tv;
            }
            for (tv, sv) in t.b.iter_mut().zip(&s.b) {
                *tv = tau * sv + (1.0 - tau) * *tv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mse_loss(y: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
        let loss = y
            .iter()
            .zip(target)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / y.len() as f64;
        let grad = y
            .iter()
            .zip(target)
            .map(|(a, b)| 2.0 * (a - b) / y.len() as f64)
            .collect();
        (loss, grad)
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Perturb every parameter of a small net and compare the analytic
        // gradient with a central difference.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut net = Mlp::new(
            &[3, 5, 4, 2],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng,
        );
        let x = [0.3, -0.7, 0.9];
        let target = [0.2, 0.8];

        net.zero_grad();
        let y = net.forward(&x);
        let (_, grad) = mse_loss(&y, &target);
        net.backward(&grad);

        // Collect analytic grads.
        let mut analytic = Vec::new();
        for l in &net.layers {
            analytic.extend_from_slice(l.gw.data());
            analytic.extend_from_slice(&l.gb);
        }

        let eps = 1e-6;
        let mut idx = 0;
        let n_layers = net.layers.len();
        for li in 0..n_layers {
            let nw = net.layers[li].w.data().len();
            let nb = net.layers[li].b.len();
            for pi in 0..nw + nb {
                let read = |net: &mut Mlp, d: f64| {
                    if pi < nw {
                        net.layers[li].w.data_mut()[pi] += d;
                    } else {
                        net.layers[li].b[pi - nw] += d;
                    }
                };
                read(&mut net, eps);
                let (lp, _) = mse_loss(&net.forward(&x), &target);
                read(&mut net, -2.0 * eps);
                let (lm, _) = mse_loss(&net.forward(&x), &target);
                read(&mut net, eps);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[idx];
                assert!(
                    (a - numeric).abs() < 1e-6 * (1.0 + a.abs()),
                    "param {idx}: analytic {a} vs numeric {numeric}"
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn input_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut net = Mlp::new(&[2, 6, 1], Activation::Relu, Activation::Linear, &mut rng);
        let x = [0.4, -0.2];
        net.zero_grad();
        let y = net.forward(&x);
        let gin = net.backward(&[1.0]);
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let yp = net.forward(&xp)[0];
            let mut xm = x;
            xm[i] -= eps;
            let ym = net.forward(&xm)[0];
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (gin[i] - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                "input {i}: {} vs {numeric} (y={})",
                gin[i],
                y[0]
            );
        }
    }

    #[test]
    fn adam_fits_a_simple_function() {
        // Regress y = sin on a few points; loss must drop by >10×.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, Activation::Linear, &mut rng);
        let mut opt = Adam::new(5e-3);
        let xs: Vec<f64> = (0..16).map(|i| i as f64 / 16.0 * 3.0).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..400 {
            net.zero_grad();
            let mut total = 0.0;
            for &x in &xs {
                let y = net.forward(&[x]);
                let (l, g) = mse_loss(&y, &[x.sin()]);
                total += l;
                net.backward(&g);
            }
            net.adam_step(&mut opt, xs.len() as f64);
            if epoch == 0 {
                first = total;
            }
            last = total;
        }
        assert!(last < first / 10.0, "loss {first} → {last}");
    }

    #[test]
    fn soft_update_interpolates() {
        let mut rng = SmallRng::seed_from_u64(8);
        let a = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Linear, &mut rng);
        let b = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Linear, &mut rng);
        let mut t = a.clone();
        t.soft_update_from(&b, 1.0); // full copy
        let mut tb = Vec::new();
        t.for_each_param(|v| tb.push(v));
        let mut bb = Vec::new();
        b.for_each_param(|v| bb.push(v));
        assert_eq!(tb, bb);
        let mut t2 = a.clone();
        t2.soft_update_from(&b, 0.0); // no-op
        let mut t2v = Vec::new();
        t2.for_each_param(|v| t2v.push(v));
        let mut av = Vec::new();
        a.for_each_param(|v| av.push(v));
        assert_eq!(t2v, av);
    }

    #[test]
    fn sigmoid_head_bounds_output() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut net = Mlp::new(&[4, 8, 1], Activation::Relu, Activation::Sigmoid, &mut rng);
        for s in 0..20 {
            let x: Vec<f64> = (0..4).map(|i| ((s * 4 + i) as f64).sin() * 10.0).collect();
            let y = net.forward(&x)[0];
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn batched_forward_backward_is_bit_identical_to_per_sample() {
        let mut rng = SmallRng::seed_from_u64(14);
        let net = Mlp::new(&[4, 8, 6, 2], Activation::Relu, Activation::Tanh, &mut rng);
        let batch = 5;
        let xs: Vec<f64> = (0..batch * 4)
            .map(|i| ((i * 29) as f64 * 0.1).sin())
            .collect();
        let gs: Vec<f64> = (0..batch * 2)
            .map(|i| ((i * 17) as f64 * 0.1).cos())
            .collect();

        // Per-sample reference: forward/backward each sample in order.
        let mut a = net.clone();
        a.zero_grad();
        let mut ys = Vec::new();
        let mut dins = Vec::new();
        for s in 0..batch {
            ys.extend(a.forward(&xs[s * 4..(s + 1) * 4]));
            dins.extend(a.backward(&gs[s * 2..(s + 1) * 2]));
        }

        // Batched: one forward + one backward over the stack.
        let mut b = net.clone();
        b.zero_grad();
        let yb = b.forward_batch(&xs, batch).to_vec();
        let db = b.backward_batch(&gs).to_vec();
        assert_eq!(yb, ys);
        assert_eq!(db, dins);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.gw, lb.gw, "weight grads diverge");
            assert_eq!(la.gb, lb.gb, "bias grads diverge");
        }
    }

    #[test]
    fn interleaved_forward_backward_matches_batched_gradients() {
        // The DDPG critic regression interleaves forward(s)/backward(s)
        // per sample; gradients don't feed back into forward, so the
        // batched pass must accumulate the same totals.
        let mut rng = SmallRng::seed_from_u64(15);
        let net = Mlp::new(&[3, 6, 1], Activation::Relu, Activation::Linear, &mut rng);
        let batch = 4;
        let xs: Vec<f64> = (0..batch * 3).map(|i| (i as f64 * 0.3).sin()).collect();

        let mut a = net.clone();
        a.zero_grad();
        for s in 0..batch {
            let y = a.forward(&xs[s * 3..(s + 1) * 3])[0];
            a.backward(&[2.0 * y]);
        }

        let mut b = net.clone();
        b.zero_grad();
        let ys = b.forward_batch(&xs, batch).to_vec();
        let gs: Vec<f64> = ys.iter().map(|&y| 2.0 * y).collect();
        b.backward_batch(&gs);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.gw, lb.gw);
            assert_eq!(la.gb, lb.gb);
        }
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let mut rng = SmallRng::seed_from_u64(10);
        let net = Mlp::new(
            &[10, 64, 64, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        assert_eq!(net.num_params(), 10 * 64 + 64 + 64 * 64 + 64 + 64 + 1);
    }
}
