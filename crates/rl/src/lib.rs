//! From-scratch deep reinforcement learning substrate.
//!
//! The paper's RL agent is DDPG (§3.2): paired actor/critic MLPs with
//! target networks, an experience pool, and exploration noise, searching
//! the per-layer crossbar configuration space. No ML framework is
//! available offline, so this crate implements the whole stack:
//!
//! - [`matrix`]: a minimal dense matrix.
//! - [`nn`]: dense layers with manual backpropagation and Adam — gradient
//!   checked against finite differences in the test suite.
//! - [`replay`]: the experience pool (paper Eq. 3 tuples).
//! - [`noise`]: Ornstein–Uhlenbeck exploration noise with decay.
//! - [`ddpg`]: the agent — actor `μ(s)`, critic `Q(s,a)`, target copies,
//!   soft updates, TD-target critic regression and deterministic policy
//!   gradient actor updates.
//! - [`env`]: a tiny environment trait plus toy environments used to
//!   verify the agent end-to-end.

pub mod ddpg;
pub mod dqn;
pub mod env;
pub mod matrix;
pub mod nn;
pub mod noise;
pub mod replay;

pub use ddpg::{Ddpg, DdpgConfig};
pub use dqn::{DiscreteExperience, Dqn, DqnConfig};
pub use matrix::Matrix;
pub use nn::{Activation, Adam, Mlp};
pub use noise::OuNoise;
pub use replay::{Experience, PrioritizedReplay, ReplayBuffer};
