//! Exploration noise for the deterministic actor.
//!
//! DDPG explores by perturbing the actor's deterministic action with
//! temporally correlated Ornstein–Uhlenbeck noise (the classic choice from
//! the DDPG paper the authors cite), annealed over training so late
//! episodes exploit the learned policy.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ornstein–Uhlenbeck process with multiplicative decay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OuNoise {
    /// Mean-reversion rate.
    pub theta: f64,
    /// Current noise magnitude.
    pub sigma: f64,
    /// Per-episode sigma decay factor.
    pub decay: f64,
    /// Sigma floor (keeps a little exploration forever).
    pub sigma_min: f64,
    state: f64,
}

impl OuNoise {
    /// Standard parameters: θ=0.15, starting σ as given, decaying by
    /// `decay` each episode down to `sigma_min`.
    pub fn new(sigma: f64, decay: f64, sigma_min: f64) -> Self {
        assert!(sigma >= 0.0 && (0.0..=1.0).contains(&decay));
        OuNoise {
            theta: 0.15,
            sigma,
            decay,
            sigma_min,
            state: 0.0,
        }
    }

    /// Next noise sample.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        // Box–Muller standard normal.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.state += self.theta * (0.0 - self.state) + self.sigma * z;
        self.state
    }

    /// Reset the process state and decay sigma (call at episode end).
    pub fn end_episode(&mut self) {
        self.state = 0.0;
        self.sigma = (self.sigma * self.decay).max(self.sigma_min);
    }

    /// Reset the process state and set sigma explicitly. Vectorized
    /// search drivers anneal every lane from one shared per-episode
    /// schedule, so each lane's process is re-seeded at group start with
    /// the sigma its episode index would have reached sequentially.
    pub fn reset_with_sigma(&mut self, sigma: f64) {
        assert!(sigma >= 0.0);
        self.state = 0.0;
        self.sigma = sigma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noise_is_zero_mean_ish() {
        let mut n = OuNoise::new(0.2, 1.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(0);
        let samples: Vec<f64> = (0..5000).map(|_| n.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn sigma_decays_to_floor() {
        let mut n = OuNoise::new(1.0, 0.5, 0.1);
        for _ in 0..10 {
            n.end_episode();
        }
        assert!((n.sigma - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut n = OuNoise::new(0.5, 0.9, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = n.sample(&mut rng);
        n.end_episode();
        assert_eq!(n.state, 0.0);
    }

    #[test]
    fn reset_with_sigma_matches_sequential_decay() {
        // Re-seeding a fresh process with the master schedule's sigma
        // reproduces the sequential end_episode iteration bit-exactly.
        let mut seq = OuNoise::new(0.7, 0.93, 0.05);
        let mut cur = 0.7;
        for _ in 0..20 {
            let mut lane = OuNoise::new(0.7, 0.93, 0.05);
            lane.reset_with_sigma(cur);
            assert_eq!(lane.sigma.to_bits(), seq.sigma.to_bits());
            assert_eq!(lane.state, 0.0);
            cur = (cur * 0.93f64).max(0.05);
            seq.end_episode();
        }
    }

    #[test]
    fn temporal_correlation_exists() {
        // Successive OU samples are correlated, unlike white noise.
        let mut n = OuNoise::new(0.2, 1.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..4000).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let rho = cov / var;
        assert!(rho > 0.5, "lag-1 autocorrelation {rho}");
    }
}
