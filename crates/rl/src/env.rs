//! Environment abstraction and toy environments.
//!
//! The AutoHet search environment (layers as steps, crossbar choice as
//! action, RUE-style reward at episode end) lives in the `autohet` crate;
//! this trait keeps the agent reusable and the toy environments below let
//! the RL stack be validated in isolation.

use serde::{Deserialize, Serialize};

/// An episodic environment with continuous scalar actions in `[0, 1]`.
pub trait Environment {
    /// Dimensionality of the state vector.
    fn state_dim(&self) -> usize;
    /// Reset to the first state of a new episode.
    fn reset(&mut self) -> Vec<f64>;
    /// Apply an action; returns `(next_state, done)`. Rewards may be
    /// delayed to episode end (as in the paper) — see
    /// [`Environment::episode_reward`].
    fn step(&mut self, action: f64) -> (Vec<f64>, bool);
    /// Reward of the completed episode (valid once `step` returned done).
    fn episode_reward(&self) -> f64;
}

/// A k-step chain whose episode reward is maximized by emitting a fixed
/// target action at every step — the simplest delayed-reward analogue of
/// the AutoHet layer walk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainEnv {
    /// Steps per episode.
    pub steps: usize,
    /// The optimal action.
    pub target: f64,
    position: usize,
    penalty: f64,
}

impl ChainEnv {
    /// New chain of `steps` steps with optimum `target`.
    pub fn new(steps: usize, target: f64) -> Self {
        assert!(steps >= 1 && (0.0..=1.0).contains(&target));
        ChainEnv {
            steps,
            target,
            position: 0,
            penalty: 0.0,
        }
    }
}

impl Environment for ChainEnv {
    fn state_dim(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f64> {
        self.position = 0;
        self.penalty = 0.0;
        vec![0.0, 1.0]
    }

    fn step(&mut self, action: f64) -> (Vec<f64>, bool) {
        let d = action - self.target;
        self.penalty += d * d;
        self.position += 1;
        let done = self.position >= self.steps;
        (vec![self.position as f64 / self.steps as f64, 1.0], done)
    }

    fn episode_reward(&self) -> f64 {
        1.0 - self.penalty / self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddpg::{Ddpg, DdpgConfig};
    use crate::noise::OuNoise;
    use crate::replay::Experience;

    #[test]
    fn chain_env_reward_peaks_at_target() {
        let mut env = ChainEnv::new(4, 0.3);
        env.reset();
        for _ in 0..4 {
            env.step(0.3);
        }
        assert!((env.episode_reward() - 1.0).abs() < 1e-12);

        env.reset();
        for _ in 0..4 {
            env.step(0.9);
        }
        assert!(env.episode_reward() < 1.0);
    }

    #[test]
    fn episode_terminates_after_steps() {
        let mut env = ChainEnv::new(3, 0.5);
        env.reset();
        assert!(!env.step(0.5).1);
        assert!(!env.step(0.5).1);
        assert!(env.step(0.5).1);
    }

    #[test]
    fn ddpg_learns_the_chain_with_delayed_reward() {
        // End-to-end smoke of the exact protocol the AutoHet search uses:
        // collect a whole episode, then write every step with the shared
        // episode reward (paper Eq. 3) and train.
        let mut env = ChainEnv::new(4, 0.6);
        let mut agent = Ddpg::new(DdpgConfig {
            state_dim: env.state_dim(),
            hidden: 32,
            batch: 32,
            actor_lr: 3e-3,
            critic_lr: 5e-3,
            seed: 11,
            ..DdpgConfig::default()
        });
        let mut noise = OuNoise::new(0.4, 0.99, 0.02);
        for _ in 0..250 {
            let mut s = env.reset();
            let mut steps = Vec::new();
            loop {
                let a = agent.act_noisy(&s, &mut noise);
                let (s2, done) = env.step(a);
                steps.push((s.clone(), s2.clone(), a, done));
                s = s2;
                if done {
                    break;
                }
            }
            let r = env.episode_reward();
            for (state, next_state, action, done) in steps {
                agent.remember(Experience {
                    state,
                    next_state,
                    action,
                    reward: r,
                    done,
                });
            }
            noise.end_episode();
            for _ in 0..4 {
                agent.train_step();
            }
        }
        // Deterministic policy should now emit near-target actions.
        let mut s = env.reset();
        let mut total = 0.0;
        for _ in 0..env.steps {
            let a = agent.act(&s);
            total += (a - 0.6_f64).abs();
            s = env.step(a).0;
        }
        let mean_err = total / env.steps as f64;
        assert!(mean_err < 0.2, "mean action error {mean_err}");
    }
}
