//! End-to-end observability dump: run every search driver plus a serving
//! window on one shared evaluation engine with the tracer and metrics
//! registry enabled, then export every `autohet-obs` artifact.
//!
//! ```sh
//! cargo run --release -p autohet --example obs_dump -- --out target/obs_dump
//! # tiny model + budget, used by scripts/check.sh and CI:
//! cargo run --release -p autohet --example obs_dump -- --smoke --out target/obs_smoke
//! ```
//!
//! Written into `--out` (default `target/obs_dump`):
//!
//! | file                  | contents                                        |
//! |-----------------------|-------------------------------------------------|
//! | `trace.jsonl`         | one span per line (path, depth, start/end ns)   |
//! | `trace.collapsed`     | collapsed stacks (self-time) for flamegraph.pl  |
//! | `metrics.txt`         | registry snapshot, one `name value` per line    |
//! | `metrics.jsonl`       | same snapshot as JSON Lines                     |
//! | `search_episodes.csv` | per-episode telemetry for every search driver   |
//! | `search_episodes.jsonl` | same rows as JSON Lines                       |
//! | `vec_groups.csv`      | per-group lane occupancy of the vectorized DDPG |
//! | `vec_groups.jsonl`    | same rows as JSON Lines                         |
//! | `serving_windows.csv` | per-window serving telemetry                    |
//! | `serving_windows.jsonl` | same rows as JSON Lines                       |
//!
//! With `--alerts`, two more artifacts exercise the deterministic alert
//! engine and the streaming export path:
//!
//! | file                    | contents                                      |
//! |-------------------------|-----------------------------------------------|
//! | `alerts.jsonl`          | alert timeline of an overload + drift serving run |
//! | `alerts.csv`            | same timeline as CSV                          |
//! | `stream_episodes.jsonl` | per-episode rows streamed live from the vectorized search |

use autohet::prelude::*;
use autohet::telemetry::{publish_episode_history, EPISODE_COLUMNS};
use autohet_obs::Series;
use autohet_rl::{DdpgConfig, DqnConfig};
use autohet_serve::telemetry::{publish_report, window_series};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let mut smoke = false;
    let mut alerts = false;
    let mut out = PathBuf::from("target/obs_dump");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--alerts" => alerts = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            other => panic!("unknown flag {other:?} (expected --smoke / --alerts / --out DIR)"),
        }
    }
    fs::create_dir_all(&out).expect("create output directory");

    let tracer = autohet_obs::trace::global();
    tracer.enable(1 << 16);
    let registry = autohet_obs::metrics::global();
    registry.clear();

    let model = if smoke {
        autohet_dnn::zoo::micro_cnn()
    } else {
        autohet_dnn::zoo::vgg16()
    };
    let episodes = if smoke { 10 } else { 100 };
    let cfg = AccelConfig::default().with_tile_sharing();
    let cands = paper_hybrid_candidates();
    let engine = Arc::new(EvalEngine::new(model.clone(), cfg));
    println!(
        "obs_dump: {} | {} episodes/driver | out: {}\n",
        model.name,
        episodes,
        out.display()
    );

    // One episode table for all drivers, tagged by a driver column so the
    // trajectories can be overlaid directly.
    let mut columns = vec![("driver", "")];
    columns.extend_from_slice(&EPISODE_COLUMNS);
    let mut episodes_table = Series::new("search_episodes", &columns);
    let mut add_rows = |driver: usize, history: &[autohet::prelude::EpisodeRecord]| {
        for e in history {
            let mut row = vec![driver as f64];
            row.extend_from_slice(&[
                e.episode as f64,
                e.rue,
                e.reward,
                e.utilization,
                e.energy_nj,
                e.cache_hit_rate,
            ]);
            episodes_table.push(row);
        }
    };

    // --- DDPG (the paper's search) -------------------------------------
    let scfg = RlSearchConfig {
        episodes,
        ddpg: DdpgConfig {
            seed: 7,
            hidden: 32,
            batch: 32,
            ..DdpgConfig::default()
        },
        train_steps: 4,
        ..RlSearchConfig::default()
    };
    let ddpg = rl_search_with_engine(&model, &cands, &cfg, &scfg, engine.clone());
    println!(
        "ddpg      best RUE {:.4}  cache: {}",
        ddpg.best_rue(),
        ddpg.timing.cache
    );
    publish_episode_history(&ddpg.history, &ddpg.timing, registry, "search.ddpg");
    add_rows(0, &ddpg.history);

    // --- Vectorized DDPG (lockstep batched driver, DESIGN.md §10) ------
    let lanes = 4;
    let (vec_ddpg, vec_stats) =
        rl_search_vec_with_stats(&model, &cands, &cfg, &scfg, lanes, engine.clone());
    println!(
        "ddpg-vec{} best RUE {:.4}  {:.0} eps/s  occupancy {:.2}",
        lanes,
        vec_ddpg.best_rue(),
        vec_stats.episodes_per_sec,
        vec_stats.mean_occupancy
    );
    publish_episode_history(
        &vec_ddpg.history,
        &vec_ddpg.timing,
        registry,
        "search.ddpg_vec",
    );
    publish_vec_search(&vec_stats, registry, "search.ddpg_vec");
    let vec_groups = vec_occupancy_series("vec_groups", &vec_stats);

    // --- DQN (discrete-action ablation) --------------------------------
    let dcfg = DqnSearchConfig {
        episodes,
        dqn: DqnConfig {
            seed: 7,
            hidden: 32,
            batch: 32,
            ..DqnConfig::default()
        },
        train_steps: 4,
    };
    let dqn = dqn_search_with_engine(&model, &cands, &cfg, &dcfg, engine.clone());
    println!(
        "dqn       best RUE {:.4}  cache: {}",
        dqn.best_rue(),
        dqn.timing.cache
    );
    publish_episode_history(&dqn.history, &dqn.timing, registry, "search.dqn");
    add_rows(1, &dqn.history);

    // --- Simulated annealing -------------------------------------------
    let acfg = AnnealingConfig {
        iterations: episodes,
        seed: 7,
        ..AnnealingConfig::default()
    };
    let sa = annealing_search_with_engine(&engine, &cands, &acfg);
    println!(
        "annealing best RUE {:.4}  cache: {}",
        sa.best_rue(),
        sa.timing.cache
    );
    publish_episode_history(&sa.history, &sa.timing, registry, "search.annealing");
    add_rows(2, &sa.history);

    // --- Greedy comparators (no trajectory, cache delta only) ----------
    let gu = greedy_utilization_with_engine(&engine, &cands);
    println!(
        "greedy-u  RUE      {:.4}  cache: {}",
        gu.rue(),
        gu.timing.cache
    );
    let gr = greedy_layerwise_rue_with_engine(&engine, &cands);
    println!(
        "greedy-r  RUE      {:.4}  cache: {}",
        gr.rue(),
        gr.timing.cache
    );

    // Engine totals across the whole sweep.
    let totals = engine.stats();
    println!("engine    totals          cache: {totals}");
    totals.publish(registry, "engine");

    // --- Serving window on the best searched strategy ------------------
    let d = Deployment::compile(&model.name, &model, &ddpg.best_strategy, &cfg);
    let rate = 0.7 * d.max_rate_rps();
    let slo = (8.0 * d.pipeline.fill_ns) as u64;
    let tenants = vec![TenantSpec::new(&model.name, d, rate, slo)];
    let requests = if smoke { 300.0 } else { 2_000.0 };
    let wl = Workload {
        seed: 7,
        horizon_ns: (requests / rate * 1e9) as u64,
    };
    let serve_cfg = ServeConfig {
        telemetry_windows: 8,
        ..ServeConfig::default()
    };
    let report = run_serving(&tenants, &wl, &serve_cfg);
    println!(
        "serving   {} completed / {} rejected over {} windows",
        report.total_completed,
        report.total_rejected,
        report.windows.len()
    );
    publish_report(&report, registry, "serve");
    let windows = window_series(&report);

    // --- Alerting + streaming demo (--alerts) ---------------------------
    //
    // A second serving run engineered to exercise the full alert state
    // machine: an opening overload burst drives the SLO burn-rate rule
    // through pending → firing, the post-burst recovery resolves it, and
    // conductance drift on two replicas lands trip/recal annotations on
    // the same timeline. Alongside it, the vectorized search streams its
    // episode rows through a bounded-buffer JSONL sink while a stall
    // detector watches the reward trajectory — both without perturbing a
    // single bit of the results (property-tested in `tests/prop_obs.rs`).
    if alerts {
        let d = Deployment::compile(&model.name, &model, &ddpg.best_strategy, &cfg);
        let replicas = 2;
        let rate = 0.7 * replicas as f64 * d.max_rate_rps();
        let slo = (8.0 * d.pipeline.fill_ns) as u64;
        let horizon_ns = (requests / rate * 1e9) as u64;
        let burst = BurstSpec {
            period_ns: horizon_ns,
            burst_ns: horizon_ns / 3,
            factor: 3.0,
        };
        let tenants = vec![TenantSpec::new(&model.name, d, rate, slo).with_burst(burst)];
        let wl = Workload {
            seed: 7,
            horizon_ns,
        };
        let alert_cfg = ServeConfig {
            replicas,
            telemetry_windows: 24,
            health: Some(HealthSpec {
                err_ppm_per_ms: 30_000,
                ..HealthSpec::default()
            }),
            ..ServeConfig::default()
        };
        let overload = run_serving(&tenants, &wl, &alert_cfg);
        let timeline = alert_timeline(&overload, &ServeAlertConfig::default());
        println!(
            "alerts    {} events ({} firing, {} resolved) over {} windows, {} health events",
            timeline.events.len(),
            timeline.count(autohet_obs::AlertKind::Firing),
            timeline.count(autohet_obs::AlertKind::Resolved),
            overload.windows.len(),
            overload.health_events.len()
        );
        let path = out.join("alerts.jsonl");
        fs::write(&path, timeline.to_jsonl())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
        let path = out.join("alerts.csv");
        fs::write(&path, timeline.to_csv())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());

        let stream_path = out.join("stream_episodes.jsonl");
        let sink = autohet_obs::JsonlFileSink::create(&stream_path)
            .unwrap_or_else(|e| panic!("create {}: {e}", stream_path.display()));
        let mut stream = EpisodeStream::new("stream_episodes", Box::new(sink));
        let mut stall = StallDetector::new((episodes.max(8) / 4) as u64, 1e-9);
        let mut tap = SearchTap {
            episodes: Some(&mut stream),
            stall: Some(&mut stall),
        };
        let (streamed, _) =
            rl_search_vec_tapped(&model, &cands, &cfg, &scfg, lanes, engine.clone(), &mut tap);
        stream.flush();
        let best_reward = stall.best_reward();
        let stall_timeline = stall.finish();
        println!(
            "streamed  {} episode rows, best reward {:.4}, {} stall alerts",
            stream.rows_written(),
            best_reward,
            stall_timeline
                .for_rule(autohet::telemetry::REWARD_STALL_RULE)
                .len()
        );
        assert_eq!(
            streamed.best_strategy, vec_ddpg.best_strategy,
            "tapped search must match the untapped run bit for bit"
        );
        println!("wrote {}", stream_path.display());
    }

    // --- Export every artifact -----------------------------------------
    tracer.disable();
    let events = tracer.drain();
    let write = |name: &str, data: String| {
        let path = out.join(name);
        fs::write(&path, data).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    };
    println!(
        "\ntrace: {} spans recorded, {} dropped",
        events.len(),
        tracer.dropped()
    );
    write("trace.jsonl", autohet_obs::trace::to_jsonl(&events));
    write("trace.collapsed", autohet_obs::trace::collapsed(&events));
    write("metrics.txt", registry.to_text());
    write("metrics.jsonl", registry.to_jsonl());
    write("search_episodes.csv", episodes_table.to_csv());
    write("search_episodes.jsonl", episodes_table.to_jsonl());
    write("vec_groups.csv", vec_groups.to_csv());
    write("vec_groups.jsonl", vec_groups.to_jsonl());
    write("serving_windows.csv", windows.to_csv());
    write("serving_windows.jsonl", windows.to_jsonl());
}
