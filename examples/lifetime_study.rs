//! Lifetime-resilience study: drift the hardware through simulated
//! hours, sweep drift-rate scale × recovery policy across both
//! deployment configurations, and report whether the full
//! detect → recalibrate → remap cascade dominates running unprotected
//! (DESIGN.md §12).
//!
//! ```sh
//! cargo run --release -p autohet --example lifetime_study
//! # tiny model + budget, used by scripts/check.sh and CI:
//! cargo run --release -p autohet --example lifetime_study -- --smoke --out target/lifetime_smoke
//! ```
//!
//! Written into `--out` (default `target/lifetime_study`):
//!
//! | file           | contents                                        |
//! |----------------|-------------------------------------------------|
//! | `rows.csv`     | the full campaign table, one row per cell       |
//! | `summary.txt`  | per-scale SLO/accuracy deltas and the verdict   |

use autohet::prelude::*;
use autohet::studies::LifetimeCampaignConfig;
use std::fs;
use std::path::PathBuf;

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("target/lifetime_study");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            other => panic!("unknown flag {other:?} (expected --smoke / --out DIR)"),
        }
    }
    fs::create_dir_all(&out).expect("create output directory");

    let model = if smoke {
        autohet_dnn::zoo::micro_cnn()
    } else {
        autohet_dnn::zoo::alexnet()
    };
    let cfg = if smoke {
        LifetimeCampaignConfig {
            drift_scales: vec![0.0, 1.0, 4.0],
            requests: 400.0,
            draws: 2,
            probes: 2,
            ..LifetimeCampaignConfig::default()
        }
    } else {
        LifetimeCampaignConfig::default()
    };
    let report = lifetime_campaign(&model, &cfg);

    println!(
        "lifetime campaign on {} at t = {} h (seed {}, load {:.0}%, {} replicas)\n",
        report.model,
        cfg.epoch_hours,
        cfg.seed,
        100.0 * cfg.load,
        cfg.replicas
    );
    println!(
        "{:>24} {:>6} {:>17} {:>9} {:>10} {:>8} {:>8} {:>6} {:>6} {:>6} {:>9}",
        "configuration",
        "scale",
        "policy",
        "fidelity",
        "noise_dev",
        "SLO %",
        "clean %",
        "trips",
        "recal",
        "remap",
        "accuracy"
    );
    for label in report.labels() {
        for r in report.rows_for(label) {
            println!(
                "{:>24} {:>6.2} {:>17} {:>9.4} {:>10.4} {:>8.2} {:>8.2} {:>6} {:>6} {:>6} {:>9.4}",
                r.label,
                r.drift_scale,
                r.policy,
                r.fidelity,
                r.noise_dev,
                100.0 * r.slo_attainment,
                100.0 * r.clean_fraction,
                r.trips,
                r.recals,
                r.remaps,
                r.accuracy
            );
        }
        println!();
    }

    // Per-scale deltas: full cascade vs. running unprotected.
    let mut summary = String::new();
    for label in report.labels() {
        let no = report.policy_rows(label, RecoveryPolicy::NoRecovery);
        let full = report.policy_rows(label, RecoveryPolicy::FullCascade);
        for (n, f) in no.iter().zip(&full) {
            if n.drift_scale == 0.0 {
                continue;
            }
            summary.push_str(&format!(
                "{} scale {:.2}: SLO {:.2}% -> {:.2}%, accuracy {:.4} -> {:.4}\n",
                label,
                n.drift_scale,
                100.0 * n.slo_attainment,
                100.0 * f.slo_attainment,
                n.accuracy,
                f.accuracy
            ));
        }
    }
    summary.push_str(&format!(
        "full_cascade_beats_no_recovery: {}\n",
        report.full_cascade_dominates()
    ));
    println!("{summary}");
    println!(
        "(campaigns are pure functions of the seed: rerunning reproduces \
         this table bit-exactly)"
    );

    // CSV artifact: the full table, stable column order.
    let mut csv = String::from(
        "label,drift_scale,policy,t_hours,fidelity,hw_accuracy_proxy,noise_dev,\
         spared,remapped,degraded,energy_nj,latency_ns,submitted,completed,errored,\
         slo_attainment,p99_ns,clean_fraction,trips,recals,remaps,recovery_ns,accuracy\n",
    );
    for r in &report.rows {
        csv.push_str(&format!(
            "{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{:.3},{:.3},{},{},{},{:.6},{},{:.6},{},{},{},{},{:.6}\n",
            r.label,
            r.drift_scale,
            r.policy,
            r.t_hours,
            r.fidelity,
            r.hw_accuracy_proxy,
            r.noise_dev,
            r.spared,
            r.remapped,
            r.degraded,
            r.energy_nj,
            r.latency_ns,
            r.submitted,
            r.completed,
            r.errored,
            r.slo_attainment,
            r.p99_ns,
            r.clean_fraction,
            r.trips,
            r.recals,
            r.remaps,
            r.recovery_ns,
            r.accuracy
        ));
    }
    let write = |name: &str, data: String| {
        let path = out.join(name);
        fs::write(&path, data).expect("write artifact");
        println!("wrote {}", path.display());
    };
    write("rows.csv", csv);
    write("summary.txt", summary);
}
