//! Quickstart: search a heterogeneous crossbar configuration for a small
//! CNN and compare it with every homogeneous baseline.
//!
//! ```sh
//! cargo run --release -p autohet --example quickstart
//! ```

use autohet::prelude::*;
use autohet_rl::DdpgConfig;

fn main() {
    // 1. A workload: a small CIFAR-style CNN (swap in zoo::vgg16() etc.).
    let model = autohet_dnn::zoo::test_cnn();
    println!(
        "model: {} ({} layers, {} weights)",
        model.name,
        model.num_layers(),
        model.total_weights()
    );

    // 2. The accelerator: paper defaults (4 PEs/tile, 8-bit weights on
    //    1-bit cells, 10-bit ADCs) plus the tile-shared scheme.
    let cfg = AccelConfig::default().with_tile_sharing();

    // 3. Homogeneous baselines.
    println!("\n-- homogeneous baselines --");
    for (shape, r) in homogeneous_reports(&model, &AccelConfig::default()) {
        println!(
            "{:>9}: util {:5.1}%  energy {:10.3e} nJ  RUE {:9.3e}",
            shape.to_string(),
            r.utilization_pct(),
            r.energy_nj(),
            r.rue()
        );
    }

    // 4. The AutoHet RL search over the hybrid candidate set.
    let scfg = RlSearchConfig {
        episodes: 120,
        ddpg: DdpgConfig {
            seed: 7,
            ..DdpgConfig::default()
        },
        ..RlSearchConfig::default()
    };
    let outcome = rl_search(&model, &paper_hybrid_candidates(), &cfg, &scfg);
    let r = &outcome.best_report;
    println!("\n-- AutoHet ({} episodes) --", scfg.episodes);
    println!(
        "  AutoHet: util {:5.1}%  energy {:10.3e} nJ  RUE {:9.3e}",
        r.utilization_pct(),
        r.energy_nj(),
        r.rue()
    );
    println!("  per-layer crossbars:");
    for (i, s) in outcome.best_strategy.iter().enumerate() {
        println!("    L{:<2} -> {s}", i + 1);
    }

    let (_, best_homo) = best_homogeneous(&model, &AccelConfig::default());
    println!(
        "\nRUE improvement over best homogeneous: {:.2}x",
        r.rue() / best_homo.rue()
    );
    println!(
        "search time: {:.2}s ({:.0}% in the simulator)",
        outcome.timing.total.as_secs_f64(),
        outcome.timing.simulator_fraction() * 100.0
    );
}
