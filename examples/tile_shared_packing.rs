//! Tile-shared allocation in isolation (paper §3.4, Fig. 8, Algorithm 1).
//!
//! Maps AlexNet onto 72×64 crossbars with the plain tile-based allocator,
//! shows the tile occupancy, then applies Algorithm 1 and shows how
//! layers pack into shared tiles.
//!
//! ```sh
//! cargo run --release -p autohet --example tile_shared_packing
//! ```

use autohet_accel::alloc::allocate_tile_based;
use autohet_accel::tile_shared::apply_tile_sharing;
use autohet_xbar::XbarShape;

fn main() {
    let model = autohet_dnn::zoo::alexnet();
    let shape = XbarShape::new(72, 64);
    let strategy = vec![shape; model.layers.len()];
    let capacity = 4;

    let mut alloc = allocate_tile_based(&model, &strategy, capacity);
    println!(
        "tile-based allocation: {} tiles, {} crossbars allocated, {} occupied ({} empty)",
        alloc.tiles.len(),
        alloc.allocated_xbars(),
        alloc.occupied_xbars(),
        alloc.empty_xbars()
    );
    println!("\nper-layer grants:");
    for p in &alloc.per_layer {
        println!(
            "  L{:<2} needs {:>4} crossbars -> {:>3} tiles ({:>4.1}% of grant empty)",
            p.layer_index + 1,
            p.footprint.total_xbars(),
            p.tiles,
            p.empty_fraction(capacity) * 100.0
        );
    }

    let report = apply_tile_sharing(&mut alloc);
    println!(
        "\nAlgorithm 1: {} -> {} tiles ({} freed, {} combinations)",
        report.tiles_before,
        report.tiles_after,
        report.freed(),
        report.combinations.len()
    );

    println!("\nshared tiles (multiple layers per tile):");
    for t in alloc.tiles.iter().filter(|t| t.distinct_layers() > 1) {
        let occ: Vec<String> = t
            .occupants
            .iter()
            .map(|s| format!("L{}x{}", s.layer_index + 1, s.xbars))
            .collect();
        println!(
            "  tile {:>3} [{}]: {} / {} crossbars used by {}",
            t.id,
            t.shape,
            t.occupied(),
            t.capacity,
            occ.join(", ")
        );
    }
    println!(
        "\nutilization of allocated crossbars: {:.1}% -> {:.1}%",
        alloc.occupied_xbars() as f64 / (report.tiles_before as u64 * capacity as u64) as f64
            * 100.0,
        alloc.occupied_xbars() as f64 / alloc.allocated_xbars() as f64 * 100.0
    );
}
