//! Batch-pipelined execution analysis (PipeLayer/ISAAC-style; extension
//! beyond the paper's single-sample latency).
//!
//! Shows per-stage latencies of VGG16 under a searched strategy, the
//! pipeline bottleneck, batch speedups, and how ISAAC-style weight
//! replication rebalances the pipeline at a crossbar cost.
//!
//! ```sh
//! cargo run --release -p autohet --example pipeline_throughput
//! ```

use autohet::prelude::*;
use autohet_accel::pipeline::{balance_replication, pipeline_report, replicated_stages};
use autohet_rl::DdpgConfig;

fn main() {
    let model = autohet_dnn::zoo::vgg16();
    let cfg = AccelConfig::default().with_tile_sharing();
    let scfg = RlSearchConfig {
        episodes: 120,
        ddpg: DdpgConfig {
            seed: 42,
            ..DdpgConfig::default()
        },
        ..RlSearchConfig::default()
    };
    let outcome = rl_search(&model, &paper_hybrid_candidates(), &cfg, &scfg);
    let report = pipeline_report(&model, &outcome.best_strategy, &cfg);

    println!("per-stage latency (ns), {}:", model.name);
    for (i, (s, shape)) in report
        .stage_ns
        .iter()
        .zip(&outcome.best_strategy)
        .enumerate()
    {
        let marker = if i == report.bottleneck_layer {
            "  <- bottleneck"
        } else {
            ""
        };
        println!(
            "  L{:<2} [{:>8}] {:>12.0}{marker}",
            i + 1,
            shape.to_string(),
            s
        );
    }
    println!(
        "\nfill latency {:.3e} ns, bottleneck {:.3e} ns, steady-state {:.1} inferences/s",
        report.fill_ns,
        report.bottleneck_ns,
        report.throughput_sps()
    );
    for n in [1usize, 8, 64, 512] {
        println!(
            "batch {n:>4}: latency {:.3e} ns, speedup over sequential {:.2}x",
            report.batch_latency_ns(n),
            report.speedup(n)
        );
    }

    println!("\nISAAC-style replication (max factor 8):");
    let plan = balance_replication(&report, 1.0, 8);
    let after = replicated_stages(&report, &plan);
    let new_bottleneck = after.iter().cloned().fold(f64::MIN, f64::max);
    println!("  factors: {:?}", plan.factors);
    println!(
        "  bottleneck {:.3e} -> {:.3e} ns ({:.2}x throughput) for {} extra crossbars",
        report.bottleneck_ns,
        new_bottleneck,
        report.bottleneck_ns / new_bottleneck,
        plan.extra_xbars(&model, &outcome.best_strategy)
    );
}
