//! Sharded serving runtime at production scale: a simulated day of
//! traffic from a 120-tenant fleet through [`run_sharded`], comparing
//! the O(log) heap scheduler at 8 shards against the 1-shard
//! linear-scan reference, then two short engineered scenarios that
//! demonstrate the telemetry-driven autoscaler (burst → scale up →
//! drain) and the online strategy swap (drifting mix → remap, zero
//! lost requests).
//!
//! ```sh
//! cargo run --release -p autohet --example serve_scale -- --out target/serve_scale
//! # small fleet + short horizon, used by scripts/check.sh and CI:
//! cargo run --release -p autohet --example serve_scale -- --smoke --out target/serve_smoke
//! ```
//!
//! Written into `--out`:
//!
//! | file                  | contents                                      |
//! |-----------------------|-----------------------------------------------|
//! | `summary.txt`         | grep-able scenario outcomes (one `key: value` per line) |
//! | `shard_windows.csv`   | per-epoch telemetry of the burst scenario     |
//! | `shard_windows.jsonl` | same rows as JSON Lines                       |
//! | `shard_alerts.jsonl`  | alert timeline with the autoscaler's own rules |
//! | `shard_alerts.csv`    | same timeline as CSV                          |
//! | `metrics.txt`         | metrics registry snapshot of both runs        |

use autohet::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// A mixed fleet: three compiled deployments cloned across `n` tenants,
/// weights cycling 1/2/4/8, every third tenant with a rush-hour burst.
fn fleet(n: usize, horizon_ns: u64, target_requests: f64) -> Vec<TenantSpec> {
    let cfg = AccelConfig::default();
    let lenet = autohet_dnn::zoo::lenet5();
    let micro = autohet_dnn::zoo::micro_cnn();
    let deployments = [
        Deployment::compile(
            "lenet/sq128",
            &lenet,
            &vec![XbarShape::square(128); lenet.layers.len()],
            &cfg,
        ),
        Deployment::compile(
            "micro/sq64",
            &micro,
            &vec![XbarShape::square(64); micro.layers.len()],
            &cfg,
        ),
        Deployment::compile(
            "micro/sq128",
            &micro,
            &vec![XbarShape::square(128); micro.layers.len()],
            &cfg,
        ),
    ];
    let secs = horizon_ns as f64 / 1e9;
    let rate = target_requests / secs / n as f64;
    (0..n)
        .map(|i| {
            let d = deployments[i % deployments.len()].clone();
            let slo = (8.0 * d.pipeline.fill_ns) as u64;
            let mut t =
                TenantSpec::new(&format!("tenant-{i:03}"), d, rate, slo).with_weight(1 << (i % 4));
            if i % 3 == 0 {
                t = t.with_burst(BurstSpec {
                    period_ns: horizon_ns,
                    burst_ns: horizon_ns / 6,
                    factor: 3.0,
                });
            }
            t
        })
        .collect()
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("target/serve_scale");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            other => panic!("unknown flag {other:?} (expected --smoke / --out DIR)"),
        }
    }
    fs::create_dir_all(&out).expect("create output directory");
    let registry = autohet_obs::metrics::global();
    registry.clear();
    let mut summary = String::new();

    // --- A simulated day at fleet scale --------------------------------
    //
    // 120 tenants, ~1.2M requests over 24h of virtual time. The same
    // workload runs through the 1-shard linear-scan reference and the
    // 8-shard heap scheduler; both produce a full report (the modes are
    // bit-identical at equal shard counts — property-tested), so the
    // wall-clock ratio isolates the scheduler's algorithmic cost.
    let (n_tenants, horizon_ns, target) = if smoke {
        (12, 4_320_000_000_000, 10_000.0) // 72 virtual minutes
    } else {
        (120, 86_400_000_000_000, 1_200_000.0) // 24 virtual hours
    };
    let tenants = fleet(n_tenants, horizon_ns, target);
    let wl = Workload {
        seed: 2024,
        horizon_ns,
    };
    let total_replicas = 8;
    let scan1 = ShardConfig {
        shards: 1,
        replicas_per_shard: total_replicas,
        mode: SelectMode::LinearScan,
        ..ShardConfig::default()
    };
    let heap8 = ShardConfig {
        shards: 8,
        replicas_per_shard: total_replicas / 8,
        mode: SelectMode::Heap,
        ..ShardConfig::default()
    };
    println!(
        "serve_scale: {} tenants, {} virtual hours, target ~{:.0}k requests",
        n_tenants,
        horizon_ns / 3_600_000_000_000,
        target / 1e3
    );

    let t0 = Instant::now();
    let ref_report = run_sharded(&tenants, &wl, &scan1);
    let scan1_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let day = run_sharded(&tenants, &wl, &heap8);
    let heap8_s = t0.elapsed().as_secs_f64();
    let speedup = scan1_s / heap8_s;
    assert_eq!(day.lost_requests(), 0);
    assert_eq!(ref_report.lost_requests(), 0);
    assert_eq!(
        day.total_submitted, ref_report.total_submitted,
        "identical arrivals regardless of sharding"
    );
    println!("  scan/1-shard: {scan1_s:.2}s   heap/8-shard: {heap8_s:.2}s   speedup {speedup:.2}x");
    println!(
        "  {} submitted, {} completed, {} rejected, fairness {:.3}",
        day.total_submitted, day.total_completed, day.total_rejected, day.fairness_index
    );
    publish_shard_report(&day, registry, "serve_scale.day");
    writeln!(summary, "requests: {}", day.total_submitted).unwrap();
    writeln!(summary, "tenants: {n_tenants}").unwrap();
    writeln!(summary, "scan1_wall_s: {scan1_s:.3}").unwrap();
    writeln!(summary, "heap8_wall_s: {heap8_s:.3}").unwrap();
    writeln!(summary, "speedup_heap8_vs_scan1: {speedup:.2}").unwrap();
    writeln!(summary, "day_fairness_index: {:.4}", day.fairness_index).unwrap();

    // --- Burst → autoscaler reacts → drain ------------------------------
    //
    // A tenant slams its shard with a 6x burst; the alert engine's
    // queue-depth rules walk pending → firing, replicas are added to the
    // hot shard, and once the burst passes the drain rule retires them.
    let micro = {
        let cfg = AccelConfig::default();
        let m = autohet_dnn::zoo::micro_cnn();
        Deployment::compile(
            "micro/sq128",
            &m,
            &vec![XbarShape::square(128); m.layers.len()],
            &cfg,
        )
    };
    let rate = 0.9 * micro.max_rate_rps();
    let slo = (10.0 * micro.pipeline.fill_ns) as u64;
    let burst_tenants = vec![TenantSpec::new("hot", micro.clone(), rate, slo)
        .with_burst(BurstSpec {
            period_ns: 200_000_000,
            burst_ns: 60_000_000,
            factor: 6.0,
        })
        .with_weight(2)];
    let burst_wl = Workload {
        seed: 9,
        horizon_ns: 200_000_000,
    };
    let autoscale = AutoscaleSpec {
        high_depth: 12.0,
        low_depth: 2.0,
        for_epochs: 2,
        clear_epochs: 2,
        min_replicas: 1,
        max_replicas: 8,
        cooldown_epochs: 0,
        ..AutoscaleSpec::default()
    };
    let burst_cfg = ShardConfig {
        shards: 1,
        epochs: 40,
        queue_depth: 512,
        autoscale: Some(autoscale),
        ..ShardConfig::default()
    };
    let burst = run_sharded(&burst_tenants, &burst_wl, &burst_cfg);
    let ups = burst.scale_events.iter().filter(|e| e.up).count();
    let downs = burst.scale_events.iter().filter(|e| !e.up).count();
    println!(
        "  burst: {} scale-ups, {} scale-downs, replicas {} -> peak {} -> {}",
        ups, downs, burst.replicas_initial, burst.replicas_peak, burst.replicas_final
    );
    assert!(ups >= 1 && downs >= 1, "autoscaler failed to react");
    publish_shard_report(&burst, registry, "serve_scale.burst");
    writeln!(summary, "scale_up_events: {ups}").unwrap();
    writeln!(summary, "scale_down_events: {downs}").unwrap();
    writeln!(summary, "replicas_peak: {}", burst.replicas_peak).unwrap();

    // --- Drifting mix → online strategy swap ----------------------------
    //
    // One tenant's arrival share ramps 8x past its long-run share; the
    // barrier remaps it onto its alternative strategy after in-flight
    // batches drain. Every admitted request still completes.
    let lenet = {
        let cfg = AccelConfig::default();
        let m = autohet_dnn::zoo::lenet5();
        Deployment::compile(
            "lenet/sq128",
            &m,
            &vec![XbarShape::square(128); m.layers.len()],
            &cfg,
        )
    };
    let alt = {
        let cfg = AccelConfig::default();
        let m = autohet_dnn::zoo::lenet5();
        Deployment::compile(
            "lenet/wide",
            &m,
            &vec![XbarShape::new(256, 128); m.layers.len()],
            &cfg,
        )
    };
    let slo = (12.0 * lenet.pipeline.fill_ns) as u64;
    let drift_tenants = vec![
        TenantSpec::new("drifter", lenet, 0.2 * micro.max_rate_rps(), slo)
            .with_ramp(RampSpec {
                start_ns: 20_000_000,
                end_ns: 60_000_000,
                to_factor: 8.0,
            })
            .with_alt(alt),
        TenantSpec::new("steady", micro.clone(), 0.4 * micro.max_rate_rps(), slo),
    ];
    let drift_wl = Workload {
        seed: 21,
        horizon_ns: 120_000_000,
    };
    let drift_cfg = ShardConfig {
        shards: 2,
        epochs: 24,
        queue_depth: 4096,
        swap: Some(SwapSpec {
            share_factor: 1.5,
            min_epoch_requests: 16,
            remap_ns: 2_000_000,
        }),
        ..ShardConfig::default()
    };
    let drift = run_sharded(&drift_tenants, &drift_wl, &drift_cfg);
    println!(
        "  drift: {} swap(s) at t={:?}, lost {}",
        drift.swap_events.len(),
        drift.swap_events.iter().map(|e| e.t_ns).collect::<Vec<_>>(),
        drift.lost_requests()
    );
    assert!(
        !drift.swap_events.is_empty(),
        "drift failed to trigger swap"
    );
    assert_eq!(drift.lost_requests(), 0);
    writeln!(summary, "swap_events: {}", drift.swap_events.len()).unwrap();
    let lost = day
        .lost_requests()
        .max(burst.lost_requests())
        .max(drift.lost_requests());
    writeln!(summary, "lost_requests: {lost}").unwrap();

    // --- Artifacts ------------------------------------------------------
    let write = |name: &str, data: String| {
        let path = out.join(name);
        fs::write(&path, data).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    };
    let windows = shard_window_series(&burst);
    let timeline = shard_alert_timeline(&burst, &ServeAlertConfig::default(), Some(&autoscale));
    println!(
        "  timeline: {} events ({} firing, {} resolved)",
        timeline.events.len(),
        timeline.count(autohet_obs::AlertKind::Firing),
        timeline.count(autohet_obs::AlertKind::Resolved)
    );
    write("summary.txt", summary);
    write("shard_windows.csv", windows.to_csv());
    write("shard_windows.jsonl", windows.to_jsonl());
    write("shard_alerts.jsonl", timeline.to_jsonl());
    write("shard_alerts.csv", timeline.to_csv());
    write("metrics.txt", registry.to_text());
}
