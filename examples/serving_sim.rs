//! Multi-tenant serving simulation: AlexNet and LeNet-5 sharing two
//! accelerator replicas behind per-tenant request queues.
//!
//! Compiles each tenant's model twice — best homogeneous strategy vs.
//! greedy AutoHet strategy — and serves both fleets under the *same*
//! seeded request stream, printing per-tenant p99 latency, SLO
//! attainment, and energy.
//!
//! ```sh
//! cargo run --release -p autohet --example serving_sim
//! ```

use autohet::prelude::*;
use autohet::search::greedy::greedy_layerwise_rue;

/// Compile `model` with either its best homogeneous or its greedy
/// AutoHet strategy.
fn deploy(model: &autohet_dnn::Model, hetero: bool, cfg: &AccelConfig) -> Deployment {
    let (label, strategy) = if hetero {
        let out = greedy_layerwise_rue(model, &paper_hybrid_candidates(), cfg);
        (format!("{}/autohet", model.name), out.strategy)
    } else {
        let (shape, _) = best_homogeneous(model, cfg);
        (
            format!("{}/homogeneous", model.name),
            vec![shape; model.layers.len()],
        )
    };
    Deployment::compile(&label, model, &strategy, cfg)
}

fn main() {
    let alexnet = autohet_dnn::zoo::alexnet();
    let lenet = autohet_dnn::zoo::lenet5();
    let cfg = AccelConfig::default().with_tile_sharing();

    // Shared scheduler and load for both fleets: rates are pinned to the
    // homogeneous deployments' capacity so the request streams are
    // identical and only the strategies differ.
    let serve = ServeConfig {
        replicas: 2,
        max_batch: 8,
        batch_window_ns: 500_000,
        queue_depth: 48,
        failures: None,
        health: None,
        retry_deadline_ns: 100_000_000,
        telemetry_windows: 0,
    };
    let homo = [deploy(&alexnet, false, &cfg), deploy(&lenet, false, &cfg)];
    let rates = [0.9 * homo[0].max_rate_rps(), 0.6 * homo[1].max_rate_rps()];
    let slos = [
        (4.0 * homo[0].pipeline.fill_ns) as u64,
        (4.0 * homo[1].pipeline.fill_ns) as u64,
    ];
    let wl = Workload {
        seed: 2024,
        horizon_ns: 50_000_000,
    };

    println!(
        "serving {} + {} on {} replicas (seed {}, horizon {} ms)\n",
        alexnet.name,
        lenet.name,
        serve.replicas,
        wl.seed,
        wl.horizon_ns / 1_000_000
    );
    println!(
        "{:>22} {:>10} {:>8} {:>12} {:>8} {:>12}",
        "tenant", "served", "shed", "p99 [µs]", "SLO %", "energy [µJ]"
    );

    for hetero in [false, true] {
        let fleet: Vec<TenantSpec> = [&alexnet, &lenet]
            .iter()
            .zip(rates.iter().zip(&slos))
            .map(|(m, (&rate, &slo))| TenantSpec::new(&m.name, deploy(m, hetero, &cfg), rate, slo))
            .collect();
        let report = run_serving_parallel(&fleet, &wl, &serve);
        println!(
            "--- {} strategies ---",
            if hetero { "autohet" } else { "homogeneous" }
        );
        for t in &report.tenants {
            println!(
                "{:>22} {:>10} {:>8} {:>12.1} {:>8.2} {:>12.2}",
                t.name,
                t.completed,
                t.rejected,
                t.p99_ns as f64 / 1e3,
                100.0 * t.slo_attainment,
                t.energy_nj / 1e3
            );
        }
        println!(
            "{:>22} {:>10} {:>8} {:>12} {:>8} {:>12.2}\n",
            "(total)",
            report.total_completed,
            report.total_rejected,
            "-",
            "-",
            report.total_energy_nj / 1e3
        );
    }
}
