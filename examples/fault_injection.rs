//! Device non-ideality study (beyond the paper's ideal-device evaluation):
//! how conductance variation and stuck-at faults degrade inference through
//! the mapped accelerator.
//!
//! ```sh
//! cargo run --release -p autohet --example fault_injection
//! ```

use autohet_accel::MappedModel;
use autohet_dnn::zoo;
use autohet_xbar::noise::NoiseModel;
use autohet_xbar::{CostParams, XbarShape};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn agreement(clean: &MappedModel, noisy: &MappedModel, images: usize) -> f64 {
    let mut agree = 0;
    for i in 0..images {
        let img = clean.model.dataset.synthetic_image(i as u64);
        if clean.infer(&img).argmax() == noisy.infer(&img).argmax() {
            agree += 1;
        }
    }
    agree as f64 / images as f64
}

fn main() {
    let model = zoo::micro_cnn();
    let strategy = vec![XbarShape::new(72, 64); model.layers.len()];
    let clean = MappedModel::program_synthetic(&model, &strategy, 7, CostParams::default());
    let images = 12;
    let mut rng = SmallRng::seed_from_u64(99);

    println!("model {}, {} images, strategy 72x64\n", model.name, images);
    println!("{:>28} {:>12}", "fault model", "agreement");

    let mut run = |label: &str, nm: NoiseModel| {
        let mut noisy = clean.clone();
        for ml in noisy.layers.iter_mut() {
            for xb in ml.crossbars_mut() {
                xb.apply_noise(&nm, &mut rng);
            }
        }
        println!(
            "{:>28} {:>11.0}%",
            label,
            agreement(&clean, &noisy, images) * 100.0
        );
    };

    run("ideal", NoiseModel::ideal());
    for sigma in [0.01, 0.05, 0.1, 0.3] {
        run(
            &format!("variation sigma={sigma}"),
            NoiseModel::variation(sigma),
        );
    }
    for p in [0.001, 0.01, 0.05] {
        run(
            &format!("stuck-at (SA0=SA1={p})"),
            NoiseModel {
                conductance_sigma: 0.0,
                stuck_at_zero: p,
                stuck_at_one: p,
            },
        );
    }
}
