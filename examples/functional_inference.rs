//! Numerical inference through the mapped accelerator.
//!
//! Programs a small CNN's (synthetic) weights onto heterogeneous
//! crossbars — 8-bit weights bit-sliced over eight 1-bit planes, bit-serial
//! inputs, 10-bit ADCs — runs images through the analog pipeline, and
//! compares logits against the floating-point golden model.
//!
//! ```sh
//! cargo run --release -p autohet --example functional_inference
//! ```

use autohet_accel::MappedModel;
use autohet_dnn::ops::{self, synthetic_weights};
use autohet_dnn::{zoo, LayerKind, Stage, Tensor};
use autohet_xbar::{CostParams, XbarShape};

fn float_reference(model: &autohet_dnn::Model, img: &Tensor, seed: u64) -> Tensor {
    let weights: Vec<Tensor> = model
        .layers
        .iter()
        .map(|l| synthetic_weights(l, seed))
        .collect();
    let last = model.layers.len() - 1;
    let mut act = img.clone();
    for stage in &model.stages {
        match *stage {
            Stage::Pool(w) => act = ops::max_pool(&act, w),
            Stage::Layer(i) => {
                let l = &model.layers[i];
                act = match l.kind {
                    LayerKind::DepthwiseConv => ops::depthwise_conv2d(l, &act, &weights[i]),
                    LayerKind::Conv => ops::conv2d(l, &act, &weights[i]),
                    LayerKind::Fc => Tensor::from_vec(
                        vec![l.out_channels],
                        ops::fully_connected(act.data(), &weights[i]),
                    ),
                };
                if i != last {
                    ops::relu(&mut act);
                }
            }
        }
    }
    act
}

fn main() {
    let model = zoo::test_cnn();
    let seed = 42;
    // A deliberately heterogeneous strategy: every layer gets a different
    // crossbar shape; the numerics must not care.
    let strategy = vec![
        XbarShape::square(32),
        XbarShape::new(72, 64),
        XbarShape::square(128),
        XbarShape::new(288, 256),
        XbarShape::new(36, 32),
    ];
    assert_eq!(strategy.len(), model.layers.len());

    println!("programming {} onto heterogeneous crossbars...", model.name);
    let mm = MappedModel::program_synthetic(&model, &strategy, seed, CostParams::default());
    for (ml, s) in mm.layers.iter().zip(&strategy) {
        let (gr, gc) = ml.grid_dims();
        println!("  L{}: {}  grid {}x{}", ml.layer.index + 1, s, gr, gc);
    }

    let mut agree = 0;
    let n = 8;
    for i in 0..n {
        let img = model.dataset.synthetic_image(i);
        let analog = mm.infer(&img);
        let float = float_reference(&model, &img, seed);
        let a = analog.argmax().unwrap();
        let f = float.argmax().unwrap();
        let max_rel = analog
            .data()
            .iter()
            .zip(float.data())
            .map(|(x, y)| (x - y).abs() / float.max_abs().max(1e-6))
            .fold(0.0_f32, f32::max);
        println!(
            "image {i}: crossbar argmax {a}, float argmax {f}, max relative logit error {:.3}",
            max_rel
        );
        if a == f {
            agree += 1;
        }
    }
    println!("\nclassification agreement: {agree}/{n}");
}
