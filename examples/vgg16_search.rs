//! The paper's flagship workload: VGG16 on CIFAR-10.
//!
//! Runs the §4.3 ablation (Base → +He → +Hy → All) and prints per-layer
//! crossbar choices (the paper's Table 3) and occupied tiles (Table 4).
//!
//! ```sh
//! cargo run --release -p autohet --example vgg16_search -- [episodes]
//! ```

use autohet::ablation::run_ablation;
use autohet::prelude::*;
use autohet_rl::DdpgConfig;

fn main() {
    let episodes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("episodes must be a number"))
        .unwrap_or(150);
    let model = autohet_dnn::zoo::vgg16();
    let scfg = RlSearchConfig {
        episodes,
        ddpg: DdpgConfig {
            seed: 42,
            ..DdpgConfig::default()
        },
        ..RlSearchConfig::default()
    };

    println!(
        "ablation on {} ({} episodes per stage)\n",
        model.name, episodes
    );
    let results = run_ablation(&model, &scfg);

    println!(
        "{:>6} {:>12} {:>8} {:>14} {:>7}",
        "stage", "RUE", "util %", "energy nJ", "tiles"
    );
    for r in &results {
        println!(
            "{:>6} {:>12.3e} {:>8.1} {:>14.3e} {:>7}",
            r.stage.label(),
            r.report.rue(),
            r.report.utilization_pct(),
            r.report.energy_nj(),
            r.report.tiles
        );
    }

    println!("\nper-layer crossbar sizes (paper Table 3):");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "layer", "Base", "+He", "+Hy", "All"
    );
    for i in 0..model.layers.len() {
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10}",
            format!("L{}", i + 1),
            results[0].strategy[i].to_string(),
            results[1].strategy[i].to_string(),
            results[2].strategy[i].to_string(),
            results[3].strategy[i].to_string(),
        );
    }

    let hy = results[2].report.tiles;
    let all = results[3].report.tiles;
    println!(
        "\noccupied tiles (paper Table 4): +Hy {} -> All {} ({:.1}% fewer)",
        hy,
        all,
        (hy - all) as f64 / hy as f64 * 100.0
    );
}
