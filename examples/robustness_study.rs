//! Robustness study: price lognormal device variation into the
//! objective, compare every homogeneous baseline and the noise-blind
//! greedy AutoHet mapping against the NSGA-II energy × latency ×
//! noise-robustness Pareto front, and report whether the noise-robust
//! pick differs from the noise-blind winner (DESIGN.md §11).
//!
//! ```sh
//! cargo run --release -p autohet --example robustness_study
//! # tiny model + budget, used by scripts/check.sh and CI:
//! cargo run --release -p autohet --example robustness_study -- --smoke --out target/robustness_smoke
//! ```
//!
//! Written into `--out` (default `target/robustness_study`):
//!
//! | file               | contents                                         |
//! |--------------------|--------------------------------------------------|
//! | `nsga_front.csv`   | the Pareto front, one row per point              |
//! | `nsga_front.jsonl` | same rows as JSON Lines                          |
//! | `metrics.txt`      | search counters/gauges mirrored by the telemetry |
//! | `summary.txt`      | the two picks and whether they differ            |

use autohet::prelude::*;
use autohet::robust::RobustSearchOutcome;
use autohet::studies::RobustnessStudyConfig;
use autohet::telemetry::front_series;
use std::fs;
use std::path::PathBuf;

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("target/robustness_study");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            other => panic!("unknown flag {other:?} (expected --smoke / --out DIR)"),
        }
    }
    fs::create_dir_all(&out).expect("create output directory");

    let model = if smoke {
        autohet_dnn::zoo::micro_cnn()
    } else {
        autohet_dnn::zoo::alexnet()
    };
    let cfg = if smoke {
        RobustnessStudyConfig {
            nsga: autohet::robust::NsgaConfig {
                population: 8,
                generations: 2,
                seed: 5,
                ..autohet::robust::NsgaConfig::default()
            },
            noise: NoiseEvalConfig {
                draws: 2,
                probes: 2,
                ..NoiseEvalConfig::default()
            },
            ..RobustnessStudyConfig::default()
        }
    } else {
        RobustnessStudyConfig::default()
    };
    let report = autohet::studies::robustness_study(&model, &cfg);

    println!(
        "robustness study on {} (NSGA pop {}, {} generations, {} noise draws × {} probes)\n",
        report.model, cfg.nsga.population, cfg.nsga.generations, cfg.noise.draws, cfg.noise.probes
    );
    println!(
        "{:>24} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "mapping", "energy [µJ]", "latency [µs]", "noise_dev", "acc", "RUE"
    );
    for r in &report.rows {
        println!(
            "{:>24} {:>12.2} {:>12.2} {:>10.5} {:>9.4} {:>9.4}",
            r.label,
            r.energy_nj / 1e3,
            r.latency_ns / 1e3,
            r.noise_dev,
            r.accuracy_proxy,
            r.rue
        );
    }
    println!();
    for g in &report.generations {
        println!(
            "generation {:>2}: front {:>2}, best energy {:.2} µJ, latency {:.2} µs, noise {:.5}",
            g.generation,
            g.front_size,
            g.best_energy_nj / 1e3,
            g.best_latency_ns / 1e3,
            g.best_noise_dev
        );
    }

    let blind = report.noise_blind();
    let robust = report.robust();
    let summary = format!(
        "noise-blind winner: {} (RUE {:.4}, noise_dev {:.5})\n\
         noise-robust pick:  {} (RUE {:.4}, noise_dev {:.5})\n\
         picks_differ: {}\n",
        blind.label,
        blind.rue,
        blind.noise_dev,
        robust.label,
        robust.rue,
        robust.noise_dev,
        report.picks_differ
    );
    println!("\n{summary}");

    // Mirror the study into the obs substrate: the front as a series,
    // the search counters into the global registry.
    let front: Vec<RobustPoint> = report
        .rows
        .iter()
        .filter(|r| r.label.starts_with("nsga/front-"))
        .map(|r| RobustPoint {
            strategy: r.strategy.clone(),
            energy_nj: r.energy_nj,
            latency_ns: r.latency_ns,
            noise_dev: r.noise_dev,
            accuracy_proxy: r.accuracy_proxy,
            rue: r.rue,
        })
        .collect();
    let outcome = RobustSearchOutcome {
        front,
        history: report.generations.clone(),
        evaluations: report.nsga_evaluations,
    };
    let registry = autohet_obs::metrics::global();
    registry.clear();
    publish_robust_search(&outcome, registry, "search.nsga");

    let series = front_series("nsga_front", &outcome.front);
    let write = |name: &str, data: String| {
        let path = out.join(name);
        fs::write(&path, data).expect("write artifact");
        println!("wrote {}", path.display());
    };
    write("nsga_front.csv", series.to_csv());
    write("nsga_front.jsonl", series.to_jsonl());
    write("metrics.txt", registry.to_text());
    write("summary.txt", summary);
}
