//! End-to-end fault-injection campaign: sweep a component fault rate
//! across {homogeneous, AutoHet} strategies × {tile-based, tile-shared}
//! allocation, repair each damaged allocation (spares → remap →
//! degrade), and serve the degraded hardware under replica failures
//! scaled with the fault rate.
//!
//! ```sh
//! cargo run --release -p autohet --example fault_campaign
//! ```

use autohet::prelude::*;

fn main() {
    let model = autohet_dnn::zoo::alexnet();
    let cfg = FaultCampaignConfig {
        fault_rates: vec![0.0, 0.02, 0.05, 0.1, 0.2],
        seed: 7,
        load: 0.7,
        requests: 1_500.0,
        spares_per_tile: 1,
        replicas: 2,
    };
    let report = fault_campaign(&model, &cfg);

    println!(
        "fault campaign on {} (seed {}, load {:.0}%, {} replicas, {} spare/tile)\n",
        report.model,
        cfg.seed,
        100.0 * cfg.load,
        cfg.replicas,
        cfg.spares_per_tile
    );
    println!(
        "{:>24} {:>6} {:>9} {:>7} {:>6} {:>6} {:>12} {:>8} {:>8} {:>10}",
        "configuration",
        "rate",
        "fidelity",
        "spared",
        "remap",
        "degr",
        "energy [µJ]",
        "SLO %",
        "failed",
        "down [ms]"
    );
    for label in report.labels() {
        for r in report.rows_for(label) {
            println!(
                "{:>24} {:>6.2} {:>9.4} {:>7} {:>6} {:>6} {:>12.2} {:>8.2} {:>8} {:>10.2}",
                r.label,
                r.fault_rate,
                r.fidelity,
                r.spared,
                r.remapped,
                r.degraded,
                r.energy_nj / 1e3,
                100.0 * r.slo_attainment,
                r.failed,
                r.downtime_ns as f64 / 1e6
            );
        }
        println!();
    }
    println!(
        "(campaigns are pure functions of the seed: rerunning reproduces \
         this table bit-exactly)"
    );
}
