//! Multi-tenant deployment: two DNNs co-resident on one heterogeneous
//! accelerator (extension of §3.4's "other models" remark).
//!
//! Jointly searches crossbar strategies for both models with a shared
//! tile pool, compares against deploying each model's best homogeneous
//! configuration side by side, and persists the winning strategies.
//!
//! ```sh
//! cargo run --release -p autohet --example multi_tenant
//! ```

use autohet::multi_model::{co_search, concat_models};
use autohet::persist::{load_strategy, save_strategy};
use autohet::prelude::*;
use autohet_rl::DdpgConfig;

fn main() {
    let models = vec![autohet_dnn::zoo::alexnet(), autohet_dnn::zoo::lenet5()];
    let cfg = AccelConfig::default();
    let scfg = RlSearchConfig {
        episodes: 120,
        ddpg: DdpgConfig {
            seed: 3,
            ..DdpgConfig::default()
        },
        ..RlSearchConfig::default()
    };

    println!(
        "co-searching {} + {} on one accelerator ({} episodes)...\n",
        models[0].name, models[1].name, scfg.episodes
    );
    let outcome = co_search(&models, &paper_hybrid_candidates(), &cfg, &scfg);

    // Side-by-side baseline for comparison.
    let (joint_model, _) = concat_models(&models);
    let mut stitched = Vec::new();
    for m in &models {
        let (shape, _) = best_homogeneous(m, &cfg);
        println!("  {} best homogeneous: {shape}", m.name);
        stitched.extend(std::iter::repeat(shape).take(m.layers.len()));
    }
    let baseline = evaluate(&joint_model, &stitched, &cfg.with_tile_sharing());

    println!(
        "\n{:>22} {:>10} {:>8} {:>12}",
        "deployment", "RUE", "util %", "tiles"
    );
    println!(
        "{:>22} {:>10.3e} {:>8.1} {:>12}",
        "side-by-side homo",
        baseline.rue(),
        baseline.utilization_pct(),
        baseline.tiles
    );
    println!(
        "{:>22} {:>10.3e} {:>8.1} {:>12}",
        "co-searched hetero",
        outcome.joint.rue(),
        outcome.joint.utilization_pct(),
        outcome.joint.tiles
    );
    println!(
        "\njoint RUE improvement: {:.2}x",
        outcome.joint.rue() / baseline.rue()
    );

    // Persist per-model strategies (the paper's search-once workflow).
    let dir = std::env::temp_dir();
    for (m, strategy) in models.iter().zip(&outcome.strategies) {
        let path = dir.join(format!("autohet_{}.strategy", m.name.to_lowercase()));
        save_strategy(
            &path,
            strategy,
            &format!("{} ({} layers)", m.name, m.layers.len()),
        )
        .expect("write strategy");
        let reloaded = load_strategy(&path).expect("read strategy");
        assert_eq!(&reloaded, strategy);
        println!("saved {} -> {}", m.name, path.display());
    }
}
