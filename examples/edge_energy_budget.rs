//! Edge-deployment scenario from the paper's motivation (§2.2): a mobile
//! accelerator with a hard area budget and battery constraints.
//!
//! Compares how each homogeneous design and AutoHet fit a fixed silicon
//! budget for AlexNet-on-MNIST, and what one inference costs in energy —
//! the setting where RUE matters.
//!
//! ```sh
//! cargo run --release -p autohet --example edge_energy_budget
//! ```

use autohet::prelude::*;
use autohet_rl::DdpgConfig;

fn main() {
    let model = autohet_dnn::zoo::alexnet();
    let cfg = AccelConfig::default();
    // An edge-accelerator budget: 16×16 mm die ≈ 1.6e9 µm² (AlexNet's
    // 26M weights with per-bitline ADCs need silicon on this order).
    let area_budget_um2 = 1.6e9;
    // An energy envelope per inference: 1.2 mJ = 1.2e6 nJ.
    let energy_budget_nj = 1.2e6;

    println!(
        "edge budget: {:.0} mm^2 silicon, {:.1} mJ / inference\n",
        area_budget_um2 / 1e6,
        energy_budget_nj / 1e6
    );
    println!(
        "{:>13} {:>12} {:>12} {:>8} {:>10} {:>6}",
        "accelerator", "area mm^2", "energy mJ", "util %", "RUE", "fits?"
    );

    let report_line = |name: &str, r: &EvalReport| {
        let fits = r.area_um2 <= area_budget_um2 && r.energy_nj() <= energy_budget_nj;
        println!(
            "{:>13} {:>12.2} {:>12.3} {:>8.1} {:>10.3e} {:>6}",
            name,
            r.area_um2 / 1e6,
            r.energy_nj() / 1e6,
            r.utilization_pct(),
            r.rue(),
            if fits { "yes" } else { "NO" }
        );
    };

    for (shape, r) in homogeneous_reports(&model, &cfg) {
        report_line(&shape.to_string(), &r);
    }

    let scfg = RlSearchConfig {
        episodes: 120,
        ddpg: DdpgConfig {
            seed: 13,
            ..DdpgConfig::default()
        },
        ..RlSearchConfig::default()
    };
    let outcome = rl_search(
        &model,
        &paper_hybrid_candidates(),
        &cfg.with_tile_sharing(),
        &scfg,
    );
    report_line("AutoHet", &outcome.best_report);

    println!(
        "\nAutoHet picked: {:?}",
        outcome
            .best_strategy
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
    );
}
